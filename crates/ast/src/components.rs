//! Normalized component signatures for the Table-4 "vis component matching"
//! metric.
//!
//! The paper decomposes a VIS query into three component groups and scores
//! each separately:
//!
//! * **VIS** — the `Visualize` part (chart type);
//! * **Axis** — the `Select` part (x/y/z attributes, including aggregates);
//! * **Data** — `Where`, `Join`, `Grouping`, `Binning`, `Order` (plus
//!   `Superlative`, which the paper folds into the data operations).
//!
//! [`Components::of`] extracts a canonical string signature per component so
//! that two trees match on a component iff their signatures are equal.
//! Signatures are order-normalized where SQL semantics are order-insensitive
//! (filter conjuncts, join conditions, group-by keys) and order-sensitive
//! where they are not (the select list encodes the axis assignment).

use crate::query::*;
use serde::{Deserialize, Serialize};

/// Canonical per-component signatures of one VIS tree.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Components {
    /// Chart type keyword, e.g. `"bar"`. Empty when the tree is SQL-only.
    pub vis: String,
    /// Ordered select/axis signature, e.g. `"t.a|count(t.*)"`.
    pub axis: String,
    /// Sorted filter-leaf signature (values included).
    pub wheres: String,
    /// Sorted join-condition signature.
    pub joins: String,
    /// Sorted group-by column signature.
    pub grouping: String,
    /// Binning signature, e.g. `"t.d@year"`.
    pub binning: String,
    /// Order signature, e.g. `"count(t.*)#desc"`, with any superlative
    /// appended as `"top3(t.a)"`.
    pub order: String,
}

/// The component names, in Table-4 column order.
pub const COMPONENT_NAMES: [&str; 7] =
    ["vis", "axis", "where", "join", "grouping", "binning", "order"];

impl Components {
    /// Extract the signatures of a tree.
    pub fn of(q: &VisQuery) -> Components {
        let mut c = Components::default();
        if let Some(chart) = q.chart {
            c.vis = chart.keyword().to_string();
        }
        let bodies = q.query.bodies();
        let primary = bodies[0];

        c.axis = primary.select.iter().map(attr_sig).collect::<Vec<_>>().join("|");
        if let Some(op) = q.query.set_op() {
            c.axis.push_str(&format!(
                "{}{}",
                op.keyword(),
                bodies[1].select.iter().map(attr_sig).collect::<Vec<_>>().join("|")
            ));
        }

        let mut leaves: Vec<String> = Vec::new();
        for b in &bodies {
            if let Some(p) = &b.filter {
                p.for_each_leaf(&mut |leaf| leaves.push(pred_sig(leaf)));
            }
        }
        leaves.sort();
        c.wheres = leaves.join("&");

        let mut joins: Vec<String> = bodies
            .iter()
            .flat_map(|b| b.joins.iter())
            .map(|j| {
                let (a, b) = if j.left.to_token() <= j.right.to_token() {
                    (&j.left, &j.right)
                } else {
                    (&j.right, &j.left)
                };
                format!("{}={}", a.to_token(), b.to_token())
            })
            .collect();
        joins.sort();
        c.joins = joins.join("&");

        if let Some(g) = &primary.group {
            let mut keys: Vec<String> = g.group_by.iter().map(ColumnRef::to_token).collect();
            keys.sort();
            c.grouping = keys.join("&");
            if let Some(bin) = &g.bin {
                c.binning = format!("{}@{}", bin.col.to_token(), bin.unit.keyword());
            }
        }

        if let Some(o) = &primary.order {
            c.order = format!("{}#{}", attr_sig(&o.attr), o.dir.keyword());
        }
        if let Some(s) = &primary.superlative {
            let tag = match s.dir {
                SuperDir::Most => "top",
                SuperDir::Least => "bottom",
            };
            if !c.order.is_empty() {
                c.order.push('+');
            }
            c.order.push_str(&format!("{tag}{}({})", s.k, attr_sig(&s.attr)));
        }
        c
    }

    /// Per-component equality against a gold tree's components, in
    /// [`COMPONENT_NAMES`] order.
    pub fn matches(&self, gold: &Components) -> [bool; 7] {
        [
            self.vis == gold.vis,
            self.axis == gold.axis,
            self.wheres == gold.wheres,
            self.joins == gold.joins,
            self.grouping == gold.grouping,
            self.binning == gold.binning,
            self.order == gold.order,
        ]
    }

    /// Whether the component is present (non-empty) on either side — used to
    /// restrict accuracy denominators to queries that exercise a component.
    pub fn present_either(&self, other: &Components) -> [bool; 7] {
        [
            !self.vis.is_empty() || !other.vis.is_empty(),
            !self.axis.is_empty() || !other.axis.is_empty(),
            !self.wheres.is_empty() || !other.wheres.is_empty(),
            !self.joins.is_empty() || !other.joins.is_empty(),
            !self.grouping.is_empty() || !other.grouping.is_empty(),
            !self.binning.is_empty() || !other.binning.is_empty(),
            !self.order.is_empty() || !other.order.is_empty(),
        ]
    }
}

fn attr_sig(a: &Attr) -> String {
    if a.agg == AggFunc::None {
        a.col.to_token()
    } else if a.distinct {
        format!("{}(distinct {})", a.agg.keyword(), a.col.to_token())
    } else {
        format!("{}({})", a.agg.keyword(), a.col.to_token())
    }
}

fn operand_sig(o: &Operand) -> String {
    match o {
        Operand::Lit(l) => l.to_token(),
        Operand::List(ls) => {
            format!("[{}]", ls.iter().map(Literal::to_token).collect::<Vec<_>>().join(","))
        }
        Operand::Subquery(q) => {
            format!("<{}>", VisQuery { chart: None, query: (**q).clone() }.to_vql())
        }
    }
}

fn pred_sig(p: &Predicate) -> String {
    match p {
        Predicate::And(..) | Predicate::Or(..) => unreachable!("leaf visitor"),
        Predicate::Cmp { op, attr, rhs } => {
            format!("{}{}{}", attr_sig(attr), op.symbol(), operand_sig(rhs))
        }
        Predicate::Between { attr, low, high } => {
            format!("{} btw {}..{}", attr_sig(attr), operand_sig(low), operand_sig(high))
        }
        Predicate::Like { attr, pattern, negated } => {
            format!("{}{}~{}", attr_sig(attr), if *negated { "!" } else { "" }, pattern)
        }
        Predicate::In { attr, rhs, negated } => {
            format!("{}{}in{}", attr_sig(attr), if *negated { "!" } else { "" }, operand_sig(rhs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::parse_vql_str;

    fn comps(vql: &str) -> Components {
        Components::of(&parse_vql_str(vql).unwrap())
    }

    #[test]
    fn extracts_all_components() {
        let c = comps(
            "visualize stacked_bar select t.a , sum ( t.q ) , t.c from t \
             join u on t.uid = u.id where t.x > 1 group by t.a , t.c \
             bin t.d by month order by sum ( t.q ) desc top 5 by sum ( t.q )",
        );
        assert_eq!(c.vis, "stacked_bar");
        assert_eq!(c.axis, "t.a|sum(t.q)|t.c");
        assert_eq!(c.wheres, "t.x>1");
        assert_eq!(c.joins, "t.uid=u.id");
        assert_eq!(c.grouping, "t.a&t.c");
        assert_eq!(c.binning, "t.d@month");
        assert_eq!(c.order, "sum(t.q)#desc+top5(sum(t.q))");
    }

    #[test]
    fn filter_conjunct_order_is_normalized() {
        let a = comps("select t.a from t where ( t.x > 1 and t.y < 2 )");
        let b = comps("select t.a from t where ( t.y < 2 and t.x > 1 )");
        assert_eq!(a.wheres, b.wheres);
    }

    #[test]
    fn join_side_order_is_normalized() {
        let a = comps("select t.a from t join u on t.uid = u.id");
        let b = comps("select t.a from t join u on u.id = t.uid");
        assert_eq!(a.joins, b.joins);
    }

    #[test]
    fn select_order_is_significant() {
        let a = comps("select t.a , t.b from t");
        let b = comps("select t.b , t.a from t");
        assert_ne!(a.axis, b.axis);
    }

    #[test]
    fn matches_and_presence() {
        let gold = comps("visualize bar select t.a , count ( t.* ) from t group by t.a");
        let pred = comps("visualize pie select t.a , count ( t.* ) from t group by t.a");
        let m = pred.matches(&gold);
        assert!(!m[0]); // vis differs
        assert!(m[1]); // axis matches
        assert!(m[4]); // grouping matches
        let p = pred.present_either(&gold);
        assert!(p[0] && p[1] && p[4]);
        assert!(!p[2] && !p[3] && !p[5] && !p[6]);
    }

    #[test]
    fn subquery_and_set_op_reflected() {
        let c = comps("select t.a from t where t.id in ( select u.id from u )");
        assert!(c.wheres.contains("<select u.id from u>"), "{}", c.wheres);
        let c = comps("select t.a from t union select t.b from t");
        assert!(c.axis.contains("union"), "{}", c.axis);
    }
}
