//! Tree node types for the unified SQL/VIS grammar (paper Figure 5).
//!
//! ```text
//! Root        ::= Q | Visualize Q
//! Q           ::= intersect R R | union R R | except R R | R
//! R           ::= Select [Group] [Order] [Superlative] [Filter]
//! Visualize   ::= bar | pie | line | scatter | stacked bar
//!               | grouping line | grouping scatter
//! Select      ::= A | A A | A A A | A ... A
//! Order       ::= asc A | desc A
//! Superlative ::= most V A | least V A
//! Group       ::= grouping A | binning A
//! Filter      ::= and/or Filter Filter | cmp A (V|R) | between | like | in ...
//! A           ::= max C T | min C T | count C T | sum C T | avg C T | C T
//! ```
//!
//! Two pragmatic extensions over the literal grammar, both needed by the
//! paper's own evaluation: explicit **join conditions** (Table 4 scores a
//! "Join" component) and a `Group` that can carry *both* `grouping` and
//! `binning` (Table 1 three-variable rule `T+Q+C: grouping + binning + agg`).

use serde::{Deserialize, Serialize};

/// The seven chart types supported by nvBench (`Visualize` production).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ChartType {
    Bar,
    Pie,
    Line,
    Scatter,
    StackedBar,
    GroupingLine,
    GroupingScatter,
}

impl ChartType {
    /// All chart types, in the canonical paper order (Table 3 row order).
    pub const ALL: [ChartType; 7] = [
        ChartType::Bar,
        ChartType::Pie,
        ChartType::Line,
        ChartType::Scatter,
        ChartType::StackedBar,
        ChartType::GroupingLine,
        ChartType::GroupingScatter,
    ];

    /// The canonical single-token VQL keyword for the chart type.
    pub fn keyword(self) -> &'static str {
        match self {
            ChartType::Bar => "bar",
            ChartType::Pie => "pie",
            ChartType::Line => "line",
            ChartType::Scatter => "scatter",
            ChartType::StackedBar => "stacked_bar",
            ChartType::GroupingLine => "grouping_line",
            ChartType::GroupingScatter => "grouping_scatter",
        }
    }

    /// Parse the VQL keyword back to a chart type.
    pub fn from_keyword(s: &str) -> Option<ChartType> {
        Some(match s {
            "bar" => ChartType::Bar,
            "pie" => ChartType::Pie,
            "line" => ChartType::Line,
            "scatter" => ChartType::Scatter,
            "stacked_bar" => ChartType::StackedBar,
            "grouping_line" => ChartType::GroupingLine,
            "grouping_scatter" => ChartType::GroupingScatter,
            _ => return None,
        })
    }

    /// Human-readable name used in synthesized natural language
    /// ("stacked bar chart", …).
    pub fn display_name(self) -> &'static str {
        match self {
            ChartType::Bar => "bar chart",
            ChartType::Pie => "pie chart",
            ChartType::Line => "line chart",
            ChartType::Scatter => "scatter chart",
            ChartType::StackedBar => "stacked bar chart",
            ChartType::GroupingLine => "grouping line chart",
            ChartType::GroupingScatter => "grouping scatter chart",
        }
    }

    /// True for the multi-series chart types that encode a third (color)
    /// variable.
    pub fn is_grouped(self) -> bool {
        matches!(
            self,
            ChartType::StackedBar | ChartType::GroupingLine | ChartType::GroupingScatter
        )
    }
}

/// A literal value appearing in filters (`V` production).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
}

impl Literal {
    /// Canonical single-token VQL spelling. Text literals are quoted so they
    /// survive tokenization as one token.
    pub fn to_token(&self) -> String {
        match self {
            Literal::Null => "null".into(),
            Literal::Bool(b) => b.to_string(),
            Literal::Int(i) => i.to_string(),
            Literal::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    f.to_string()
                }
            }
            Literal::Text(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_token())
    }
}

/// A (table, column) reference. `column == "*"` denotes the SQL star.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ColumnRef {
    pub table: String,
    pub column: String,
}

impl ColumnRef {
    pub fn new(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef { table: table.into(), column: column.into() }
    }

    pub fn is_star(&self) -> bool {
        self.column == "*"
    }

    /// Canonical `table.column` token.
    pub fn to_token(&self) -> String {
        format!("{}.{}", self.table, self.column)
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

/// Aggregate function of the `A` production (`None` = bare column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    None,
    Max,
    Min,
    Count,
    Sum,
    Avg,
}

impl AggFunc {
    pub fn keyword(self) -> &'static str {
        match self {
            AggFunc::None => "",
            AggFunc::Max => "max",
            AggFunc::Min => "min",
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
        }
    }

    pub fn from_keyword(s: &str) -> Option<AggFunc> {
        Some(match s {
            "max" => AggFunc::Max,
            "min" => AggFunc::Min,
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }

    /// Aggregates that require a quantitative input column. `Count` works on
    /// anything; `Max`/`Min` also work on orderable non-numerics but the
    /// synthesizer only inserts them on quantitative columns.
    pub fn requires_quantitative(self) -> bool {
        matches!(self, AggFunc::Sum | AggFunc::Avg)
    }
}

/// The `A` production: an optionally aggregated column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attr {
    pub agg: AggFunc,
    pub col: ColumnRef,
    pub distinct: bool,
}

impl Attr {
    /// A bare (unaggregated) column.
    pub fn col(table: impl Into<String>, column: impl Into<String>) -> Self {
        Attr { agg: AggFunc::None, col: ColumnRef::new(table, column), distinct: false }
    }

    /// An aggregated column.
    pub fn agg(agg: AggFunc, table: impl Into<String>, column: impl Into<String>) -> Self {
        Attr { agg, col: ColumnRef::new(table, column), distinct: false }
    }

    pub fn is_aggregated(&self) -> bool {
        self.agg != AggFunc::None
    }
}

impl std::fmt::Display for Attr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.agg == AggFunc::None {
            write!(f, "{}", self.col)
        } else if self.distinct {
            write!(f, "{} ( distinct {} )", self.agg.keyword(), self.col)
        } else {
            write!(f, "{} ( {} )", self.agg.keyword(), self.col)
        }
    }
}

/// An equi-join condition between two tables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JoinCond {
    pub left: ColumnRef,
    pub right: ColumnRef,
}

/// Comparison operators of the `Filter` production.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    pub fn from_symbol(s: &str) -> Option<CmpOp> {
        Some(match s {
            "=" | "==" => CmpOp::Eq,
            "!=" | "<>" => CmpOp::Ne,
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            _ => return None,
        })
    }
}

/// Right-hand side of a comparison: a literal (`V`), a literal list
/// (SQL `IN (…)`), or a nested subquery (`R`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    Lit(Literal),
    List(Vec<Literal>),
    Subquery(Box<SetQuery>),
}

impl Operand {
    pub fn int(v: i64) -> Self {
        Operand::Lit(Literal::Int(v))
    }
    pub fn text(v: impl Into<String>) -> Self {
        Operand::Lit(Literal::Text(v.into()))
    }
    pub fn is_subquery(&self) -> bool {
        matches!(self, Operand::Subquery(_))
    }
}

/// The `Filter` production.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    And(Box<Predicate>, Box<Predicate>),
    Or(Box<Predicate>, Box<Predicate>),
    Cmp { op: CmpOp, attr: Attr, rhs: Operand },
    Between { attr: Attr, low: Operand, high: Operand },
    Like { attr: Attr, pattern: String, negated: bool },
    In { attr: Attr, rhs: Operand, negated: bool },
}

impl Predicate {
    /// Number of leaf (non-and/or) conditions — the paper's
    /// "number of Filter-subtrees".
    pub fn leaf_count(&self) -> usize {
        match self {
            Predicate::And(l, r) | Predicate::Or(l, r) => l.leaf_count() + r.leaf_count(),
            _ => 1,
        }
    }

    /// True if any leaf condition compares against a nested subquery.
    pub fn has_subquery(&self) -> bool {
        match self {
            Predicate::And(l, r) | Predicate::Or(l, r) => l.has_subquery() || r.has_subquery(),
            Predicate::Cmp { rhs, .. } => rhs.is_subquery(),
            Predicate::Between { low, high, .. } => low.is_subquery() || high.is_subquery(),
            Predicate::Like { .. } => false,
            Predicate::In { rhs, .. } => rhs.is_subquery(),
        }
    }

    /// Visit every leaf condition.
    pub fn for_each_leaf<'a>(&'a self, f: &mut impl FnMut(&'a Predicate)) {
        match self {
            Predicate::And(l, r) | Predicate::Or(l, r) => {
                l.for_each_leaf(f);
                r.for_each_leaf(f);
            }
            leaf => f(leaf),
        }
    }

    /// Conjoin two optional predicates.
    pub fn and_opt(a: Option<Predicate>, b: Option<Predicate>) -> Option<Predicate> {
        match (a, b) {
            (Some(a), Some(b)) => Some(Predicate::And(Box::new(a), Box::new(b))),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }
}

/// Temporal or numeric binning unit (`binning A`).
///
/// Paper §2.3: temporal columns bin by minute, hour, day-of-week, month,
/// quarter or year; numeric columns bin into equal-width buckets with
/// `bin_size = ceil((max - min) / n_bins)`, default `n_bins = 10`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinUnit {
    Minute,
    Hour,
    Weekday,
    Month,
    Quarter,
    Year,
    /// Equal-width numeric binning into `n_bins` buckets.
    Numeric { n_bins: u32 },
}

impl BinUnit {
    pub const DEFAULT_NUMERIC_BINS: u32 = 10;

    pub fn keyword(self) -> String {
        match self {
            BinUnit::Minute => "minute".into(),
            BinUnit::Hour => "hour".into(),
            BinUnit::Weekday => "weekday".into(),
            BinUnit::Month => "month".into(),
            BinUnit::Quarter => "quarter".into(),
            BinUnit::Year => "year".into(),
            BinUnit::Numeric { n_bins } => format!("bucket_{n_bins}"),
        }
    }

    pub fn from_keyword(s: &str) -> Option<BinUnit> {
        Some(match s {
            "minute" => BinUnit::Minute,
            "hour" => BinUnit::Hour,
            "weekday" => BinUnit::Weekday,
            "month" => BinUnit::Month,
            "quarter" => BinUnit::Quarter,
            "year" => BinUnit::Year,
            _ => {
                let n = s.strip_prefix("bucket_")?.parse().ok()?;
                BinUnit::Numeric { n_bins: n }
            }
        })
    }

    pub fn is_temporal(self) -> bool {
        !matches!(self, BinUnit::Numeric { .. })
    }
}

/// A binning operation on one column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BinSpec {
    pub col: ColumnRef,
    pub unit: BinUnit,
}

/// The `Group` production, extended so that `grouping` and `binning` may
/// co-occur (needed by the Table-1 rule for `T+Q+C` charts).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct GroupSpec {
    /// `grouping A` columns (one or two; two for stacked-bar style charts).
    pub group_by: Vec<ColumnRef>,
    /// Optional `binning A`.
    pub bin: Option<BinSpec>,
}

impl GroupSpec {
    pub fn by(col: ColumnRef) -> Self {
        GroupSpec { group_by: vec![col], bin: None }
    }

    pub fn is_empty(&self) -> bool {
        self.group_by.is_empty() && self.bin.is_none()
    }

    /// Total number of grouping keys (group-by columns + bin column).
    pub fn key_count(&self) -> usize {
        self.group_by.len() + usize::from(self.bin.is_some())
    }
}

/// Sort direction of the `Order` production.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrderDir {
    Asc,
    Desc,
}

impl OrderDir {
    pub fn keyword(self) -> &'static str {
        match self {
            OrderDir::Asc => "asc",
            OrderDir::Desc => "desc",
        }
    }
}

/// The `Order` production: `asc A | desc A`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OrderSpec {
    pub attr: Attr,
    pub dir: OrderDir,
}

/// Direction of the `Superlative` production.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuperDir {
    /// `most V A` — the top `k` rows by `A` descending.
    Most,
    /// `least V A` — the bottom `k` rows by `A` ascending.
    Least,
}

/// The `Superlative` production: `most V A | least V A` (SQL
/// `ORDER BY A DESC/ASC LIMIT k`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Superlative {
    pub dir: SuperDir,
    pub k: u64,
    pub attr: Attr,
}

/// The `R` production: one select block with optional clauses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryBody {
    /// Projection attributes, ordered: x-axis, y-axis, (z/color).
    pub select: Vec<Attr>,
    /// Tables in the FROM clause (first is the driving table).
    pub from: Vec<String>,
    /// Equi-join conditions connecting the FROM tables.
    pub joins: Vec<JoinCond>,
    pub filter: Option<Predicate>,
    pub group: Option<GroupSpec>,
    pub order: Option<OrderSpec>,
    pub superlative: Option<Superlative>,
}

impl QueryBody {
    /// A minimal body projecting `select` from a single `table`.
    pub fn simple(table: impl Into<String>, select: Vec<Attr>) -> Self {
        QueryBody {
            select,
            from: vec![table.into()],
            joins: vec![],
            filter: None,
            group: None,
            order: None,
            superlative: None,
        }
    }

    pub fn has_join(&self) -> bool {
        !self.joins.is_empty() || self.from.len() > 1
    }

    /// All columns referenced anywhere in the body (projection, joins,
    /// filter leaves, grouping, ordering, superlative). Stars are included.
    pub fn referenced_columns(&self) -> Vec<&ColumnRef> {
        let mut cols: Vec<&ColumnRef> = Vec::new();
        for a in &self.select {
            cols.push(&a.col);
        }
        for j in &self.joins {
            cols.push(&j.left);
            cols.push(&j.right);
        }
        if let Some(p) = &self.filter {
            p.for_each_leaf(&mut |leaf| match leaf {
                Predicate::Cmp { attr, .. }
                | Predicate::Between { attr, .. }
                | Predicate::Like { attr, .. }
                | Predicate::In { attr, .. } => cols.push(&attr.col),
                _ => {}
            });
        }
        if let Some(g) = &self.group {
            for c in &g.group_by {
                cols.push(c);
            }
            if let Some(b) = &g.bin {
                cols.push(&b.col);
            }
        }
        if let Some(o) = &self.order {
            cols.push(&o.attr.col);
        }
        if let Some(s) = &self.superlative {
            cols.push(&s.attr.col);
        }
        cols
    }
}

/// Set-operation kinds of the `Q` production.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetOp {
    Intersect,
    Union,
    Except,
}

impl SetOp {
    pub fn keyword(self) -> &'static str {
        match self {
            SetOp::Intersect => "intersect",
            SetOp::Union => "union",
            SetOp::Except => "except",
        }
    }
}

/// The `Q` production: a single body or a set-combination of two bodies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SetQuery {
    Simple(Box<QueryBody>),
    Compound { op: SetOp, left: Box<QueryBody>, right: Box<QueryBody> },
}

impl SetQuery {
    pub fn simple(body: QueryBody) -> Self {
        SetQuery::Simple(Box::new(body))
    }

    /// The primary (left-most) body — the one tree edits operate on.
    pub fn primary(&self) -> &QueryBody {
        match self {
            SetQuery::Simple(b) => b,
            SetQuery::Compound { left, .. } => left,
        }
    }

    pub fn primary_mut(&mut self) -> &mut QueryBody {
        match self {
            SetQuery::Simple(b) => b,
            SetQuery::Compound { left, .. } => left,
        }
    }

    pub fn set_op(&self) -> Option<SetOp> {
        match self {
            SetQuery::Simple(_) => None,
            SetQuery::Compound { op, .. } => Some(*op),
        }
    }

    /// Both bodies (one for simple queries).
    pub fn bodies(&self) -> Vec<&QueryBody> {
        match self {
            SetQuery::Simple(b) => vec![b],
            SetQuery::Compound { left, right, .. } => vec![left, right],
        }
    }

    pub fn bodies_mut(&mut self) -> Vec<&mut QueryBody> {
        match self {
            SetQuery::Simple(b) => vec![b],
            SetQuery::Compound { left, right, .. } => vec![left, right],
        }
    }

    /// True if any filter anywhere in the query nests a subquery.
    pub fn has_subquery(&self) -> bool {
        self.bodies()
            .iter()
            .any(|b| b.filter.as_ref().is_some_and(|p| p.has_subquery()))
    }
}

/// The `Root` production: an optional `Visualize` plus a query.
///
/// A tree with `chart == None` is an **SQL tree** (*t_Q* in the paper); a
/// tree with `chart == Some(_)` is a **VIS tree** (*t_i*).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisQuery {
    pub chart: Option<ChartType>,
    pub query: SetQuery,
}

impl VisQuery {
    /// An SQL tree (no visualization).
    pub fn sql(query: SetQuery) -> Self {
        VisQuery { chart: None, query }
    }

    /// A VIS tree.
    pub fn vis(chart: ChartType, query: SetQuery) -> Self {
        VisQuery { chart: Some(chart), query }
    }

    pub fn is_vis(&self) -> bool {
        self.chart.is_some()
    }

    /// Number of `A`-subtrees in the primary select (the paper's attribute
    /// count used by hardness and the Table-1 variable-count rules).
    pub fn select_arity(&self) -> usize {
        self.query.primary().select.len()
    }

    /// Lowercased names of every table this query can read: FROM lists of
    /// all bodies, recursively including subqueries in filters. Qualifier
    /// tables of column references are *not* included — execution resolves
    /// columns against the FROM relation only, so a database restricted to
    /// these tables behaves identically (used by the differential-test
    /// shrinker to drop irrelevant tables from counterexamples).
    pub fn referenced_tables(&self) -> Vec<String> {
        fn walk_set(q: &SetQuery, out: &mut Vec<String>) {
            for body in q.bodies() {
                for t in &body.from {
                    let t = t.to_lowercase();
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
                if let Some(p) = &body.filter {
                    p.for_each_leaf(&mut |leaf| {
                        let operands: Vec<&Operand> = match leaf {
                            Predicate::Cmp { rhs, .. } | Predicate::In { rhs, .. } => vec![rhs],
                            Predicate::Between { low, high, .. } => vec![low, high],
                            _ => vec![],
                        };
                        for o in operands {
                            if let Operand::Subquery(sub) = o {
                                walk_set(sub, out);
                            }
                        }
                    });
                }
            }
        }
        let mut out = Vec::new();
        walk_set(&self.query, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body() -> QueryBody {
        QueryBody::simple(
            "flight",
            vec![Attr::col("flight", "destination"), Attr::agg(AggFunc::Count, "flight", "*")],
        )
    }

    #[test]
    fn chart_keyword_round_trip() {
        for c in ChartType::ALL {
            assert_eq!(ChartType::from_keyword(c.keyword()), Some(c), "{c:?}");
        }
        assert_eq!(ChartType::from_keyword("heatmap"), None);
    }

    #[test]
    fn agg_keyword_round_trip() {
        for a in [AggFunc::Max, AggFunc::Min, AggFunc::Count, AggFunc::Sum, AggFunc::Avg] {
            assert_eq!(AggFunc::from_keyword(a.keyword()), Some(a));
        }
        assert_eq!(AggFunc::from_keyword(""), None);
    }

    #[test]
    fn literal_tokens() {
        assert_eq!(Literal::Int(5).to_token(), "5");
        assert_eq!(Literal::Float(2.0).to_token(), "2.0");
        assert_eq!(Literal::Float(2.5).to_token(), "2.5");
        assert_eq!(Literal::Text("O'Hare".into()).to_token(), "'O''Hare'");
        assert_eq!(Literal::Null.to_token(), "null");
        assert_eq!(Literal::Bool(true).to_token(), "true");
    }

    #[test]
    fn attr_display() {
        assert_eq!(Attr::col("t", "c").to_string(), "t.c");
        assert_eq!(Attr::agg(AggFunc::Count, "t", "*").to_string(), "count ( t.* )");
        let mut d = Attr::agg(AggFunc::Count, "t", "c");
        d.distinct = true;
        assert_eq!(d.to_string(), "count ( distinct t.c )");
    }

    #[test]
    fn predicate_leaf_count_and_subquery() {
        let leaf = Predicate::Cmp {
            op: CmpOp::Gt,
            attr: Attr::col("t", "price"),
            rhs: Operand::int(100),
        };
        let sub = Predicate::In {
            attr: Attr::col("t", "id"),
            rhs: Operand::Subquery(Box::new(SetQuery::simple(body()))),
            negated: false,
        };
        let both = Predicate::And(Box::new(leaf.clone()), Box::new(sub));
        assert_eq!(leaf.leaf_count(), 1);
        assert_eq!(both.leaf_count(), 2);
        assert!(!leaf.has_subquery());
        assert!(both.has_subquery());
    }

    #[test]
    fn and_opt_combinations() {
        let p = || Predicate::Cmp {
            op: CmpOp::Eq,
            attr: Attr::col("t", "c"),
            rhs: Operand::int(1),
        };
        assert!(Predicate::and_opt(None, None).is_none());
        assert_eq!(Predicate::and_opt(Some(p()), None), Some(p()));
        assert_eq!(Predicate::and_opt(None, Some(p())), Some(p()));
        assert_eq!(
            Predicate::and_opt(Some(p()), Some(p())).unwrap().leaf_count(),
            2
        );
    }

    #[test]
    fn bin_unit_round_trip() {
        let units = [
            BinUnit::Minute,
            BinUnit::Hour,
            BinUnit::Weekday,
            BinUnit::Month,
            BinUnit::Quarter,
            BinUnit::Year,
            BinUnit::Numeric { n_bins: 10 },
            BinUnit::Numeric { n_bins: 25 },
        ];
        for u in units {
            assert_eq!(BinUnit::from_keyword(&u.keyword()), Some(u), "{u:?}");
        }
        assert_eq!(BinUnit::from_keyword("bucket_x"), None);
        assert!(BinUnit::Year.is_temporal());
        assert!(!BinUnit::Numeric { n_bins: 10 }.is_temporal());
    }

    #[test]
    fn referenced_columns_cover_all_clauses() {
        let mut b = body();
        b.joins.push(JoinCond {
            left: ColumnRef::new("flight", "src"),
            right: ColumnRef::new("airport", "id"),
        });
        b.filter = Some(Predicate::Cmp {
            op: CmpOp::Gt,
            attr: Attr::col("flight", "price"),
            rhs: Operand::int(500),
        });
        b.group = Some(GroupSpec::by(ColumnRef::new("flight", "destination")));
        b.order = Some(OrderSpec {
            attr: Attr::agg(AggFunc::Count, "flight", "*"),
            dir: OrderDir::Desc,
        });
        b.superlative = Some(Superlative {
            dir: SuperDir::Most,
            k: 5,
            attr: Attr::col("flight", "price"),
        });
        let cols = b.referenced_columns();
        let names: Vec<String> = cols.iter().map(|c| c.to_token()).collect();
        for expect in [
            "flight.destination",
            "flight.*",
            "flight.src",
            "airport.id",
            "flight.price",
        ] {
            assert!(names.iter().any(|n| n == expect), "missing {expect} in {names:?}");
        }
        assert_eq!(cols.len(), 8);
    }

    #[test]
    fn set_query_accessors() {
        let simple = SetQuery::simple(body());
        assert!(simple.set_op().is_none());
        assert_eq!(simple.bodies().len(), 1);

        let comp = SetQuery::Compound {
            op: SetOp::Union,
            left: Box::new(body()),
            right: Box::new(body()),
        };
        assert_eq!(comp.set_op(), Some(SetOp::Union));
        assert_eq!(comp.bodies().len(), 2);
        assert_eq!(comp.primary().from, vec!["flight".to_string()]);
    }

    #[test]
    fn vis_query_flags() {
        let q = VisQuery::sql(SetQuery::simple(body()));
        assert!(!q.is_vis());
        assert_eq!(q.select_arity(), 2);
        let v = VisQuery::vis(ChartType::Pie, SetQuery::simple(body()));
        assert!(v.is_vis());
    }

    #[test]
    fn group_spec_counts() {
        let mut g = GroupSpec::by(ColumnRef::new("t", "c"));
        assert_eq!(g.key_count(), 1);
        g.bin = Some(BinSpec { col: ColumnRef::new("t", "d"), unit: BinUnit::Year });
        assert_eq!(g.key_count(), 2);
        assert!(!g.is_empty());
        assert!(GroupSpec::default().is_empty());
    }
}
