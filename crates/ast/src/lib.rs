//! # nv-ast — the unified SQL/VIS abstract syntax tree
//!
//! This crate implements the grammar of Figure 5 of the nvBench paper
//! (SIGMOD 2021): a single AST that can represent both a SQL query (*what
//! data*) and a VIS query (*what data* + *how to visualize*). The grammar is
//! an extension of SemQL with a `Visualize` production (seven chart types)
//! and a `binning` group operation.
//!
//! The same tree is:
//!
//! * produced by the SQL parser in `nv-sql`,
//! * edited by the synthesizer in `nv-synth` (deletions + insertions),
//! * executed by the relational engine in `nv-data`,
//! * rendered to Vega-Lite / ECharts by `nv-render`,
//! * and linearized to / parsed from **VQL token sequences** (the
//!   input/output vocabulary of the `seq2vis` neural translator).
//!
//! ## Modules
//!
//! * [`query`] — the tree types ([`VisQuery`], [`QueryBody`], [`Predicate`], …)
//! * [`tokens`] — canonical VQL linearization and its parser (round-trip safe)
//! * [`hardness`] — Easy/Medium/Hard/Extra-Hard classification (§3.2)
//! * [`components`] — normalized component signatures for the Table-4 metrics
//! * [`edit`] — tree-edit records Δ = (Δ⁻, Δ⁺) produced by the synthesizer

pub mod components;
pub mod edit;
pub mod hardness;
pub mod query;
pub mod tokens;

pub use components::Components;
pub use edit::{EditOp, TreeEdit};
pub use hardness::Hardness;
pub use query::{
    AggFunc, Attr, BinSpec, BinUnit, ChartType, CmpOp, ColumnRef, GroupSpec, JoinCond, Literal,
    Operand, OrderDir, OrderSpec, Predicate, QueryBody, SetOp, SetQuery, SuperDir, Superlative,
    VisQuery,
};
pub use tokens::{parse_vql, ParseError};
