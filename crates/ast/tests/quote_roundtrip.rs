//! Serializer-layer canonicality for text literals containing quotes.
//!
//! PR 3's proptest regression (`%'J` inside a UNION tree) was pinned at the
//! golden-corpus layer; these tests pin the same guarantee where it actually
//! lives — `to_vql` → `tokenize_vql` → `parse_vql` must be the identity on
//! the AST *and* re-serialize to the identical string, for every quoting
//! shape a text literal can take.

use nv_ast::query::*;
use nv_ast::tokens::{parse_vql, parse_literal, tokenize_vql};

fn query_with_filter(filter: Predicate) -> VisQuery {
    let body = QueryBody {
        select: vec![Attr::col("t", "a")],
        from: vec!["t".into()],
        joins: vec![],
        filter: Some(filter),
        group: None,
        order: None,
        superlative: None,
    };
    VisQuery::vis(ChartType::Bar, SetQuery::simple(body))
}

fn assert_canonical(q: &VisQuery) {
    let vql = q.to_vql();
    let toks = tokenize_vql(&vql);
    assert_eq!(toks, q.to_tokens(), "tokenizer split differs from serializer tokens: {vql:?}");
    let back = parse_vql(&toks).unwrap_or_else(|e| panic!("{e}: {vql:?}"));
    assert_eq!(&back, q, "round trip changed the AST for {vql:?}");
    assert_eq!(back.to_vql(), vql, "re-serialization is not canonical for {vql:?}");
}

/// The exact embedded-quote literal from the PR 3 proptest regression.
#[test]
fn embedded_quote_regression_literal_is_canonical() {
    assert_canonical(&query_with_filter(Predicate::Between {
        attr: Attr::col("t", "a"),
        low: Operand::Lit(Literal::Text("%'J".into())),
        high: Operand::Lit(Literal::Int(-677_871_952)),
    }));
}

#[test]
fn quoting_shapes_are_canonical_in_every_literal_position() {
    let nasties = [
        "", "'", "''", "'''", "a'", "'a", "a'b", "don't stop", "O'Hare",
        "100% 'sure'", " ' ' ", "%'J", "x''y", "tab\there",
    ];
    for text in nasties {
        let lit = || Operand::Lit(Literal::Text(text.to_string()));
        assert_canonical(&query_with_filter(Predicate::Cmp {
            op: CmpOp::Eq,
            attr: Attr::col("t", "a"),
            rhs: lit(),
        }));
        assert_canonical(&query_with_filter(Predicate::Like {
            attr: Attr::col("t", "a"),
            pattern: text.to_string(),
            negated: true,
        }));
        assert_canonical(&query_with_filter(Predicate::In {
            attr: Attr::col("t", "a"),
            rhs: Operand::List(vec![
                Literal::Text(text.to_string()),
                Literal::Text(format!("{text}'{text}")),
                Literal::Null,
            ]),
            negated: false,
        }));
    }
}

/// `Literal::to_token` and `parse_literal` are exact inverses on text.
#[test]
fn literal_token_is_invertible_on_text() {
    let alphabet = ['\'', 'a', ' ', '%'];
    let mut cases = vec![String::new()];
    let mut frontier = vec![String::new()];
    for _ in 0..4 {
        let mut next = Vec::new();
        for f in &frontier {
            for c in alphabet {
                let mut s = f.clone();
                s.push(c);
                next.push(s);
            }
        }
        cases.extend(next.iter().cloned());
        frontier = next;
    }
    for text in cases {
        let tok = Literal::Text(text.clone()).to_token();
        assert_eq!(
            parse_literal(&tok),
            Some(Literal::Text(text.clone())),
            "token {tok:?} did not decode back to {text:?}"
        );
    }
}
