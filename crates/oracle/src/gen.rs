//! Deterministic, seeded generators for differential-test cases: random
//! typed databases (FKs, NULLs, duplicate rows, empty tables, text-encoded
//! dates) and random well-typed queries biased toward the Spider-subset
//! shapes the synthesizer emits.
//!
//! Determinism is a hard requirement — the same `(seed, index)` must yield a
//! byte-identical case in every thread and every process, because the CI
//! differential stage and the shrinker both re-derive cases from printed
//! seeds. Everything therefore runs off a single `StdRng` stream per case
//! and no iteration order ever touches a hash map.

use nv_ast::*;
use nv_data::{table_from, ColumnType, Database, Timestamp, Value};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Queries generated per database; `case N` in a differential report means
/// `gen_case(seed, N)` and `query M` indexes into its query vector.
pub const QUERIES_PER_CASE: usize = 3;

/// Per-case RNG seed: mixes the batch seed with the case index so cases are
/// independent streams but fully reproducible in isolation.
pub fn case_seed(seed: u64, index: usize) -> u64 {
    seed ^ (index as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(17)
}

/// One differential-test case: a database plus [`QUERIES_PER_CASE`] queries
/// against it.
pub fn gen_case(seed: u64, index: usize) -> (Database, Vec<VisQuery>) {
    let mut rng = StdRng::seed_from_u64(case_seed(seed, index));
    let db = gen_database(&mut rng, index);
    let mut queries: Vec<VisQuery> = Vec::with_capacity(QUERIES_PER_CASE);
    for qi in 0..QUERIES_PER_CASE {
        let derived = if qi > 0 && rng.random_bool(0.3) {
            derive_sibling(&mut rng, &db, &queries[qi - 1])
        } else {
            None
        };
        queries.push(derived.unwrap_or_else(|| gen_query(&mut rng, &db)));
    }
    (db, queries)
}

/// Keep the previous query's scan (FROM/JOIN/WHERE) and grouping verbatim
/// but regenerate the aggregate, ORDER BY, and superlative. Sibling queries
/// share scan- and group-layer cache keys in `execute_with_cache`, so the
/// warm paths run with *different* downstream work — exactly where a
/// stale-cache bug would hide from independently generated queries.
fn derive_sibling(rng: &mut StdRng, db: &Database, prev: &VisQuery) -> Option<VisQuery> {
    let SetQuery::Simple(body) = &prev.query else { return None };
    let tables = table_infos(db);
    let t = tables.iter().find(|ti| ti.name.eq_ignore_ascii_case(&body.from[0]))?;
    let mut nb = (**body).clone();
    nb.order = None;
    nb.superlative = None;
    if let Some(pos) = nb.select.iter().position(Attr::is_aggregated) {
        nb.select[pos] = gen_agg_attr(rng, t);
    } else if rng.random_bool(0.5) {
        // Bare projection gains an aggregate → implicit grouping over the
        // same scan the sibling ran bare.
        nb.select.push(gen_agg_attr(rng, t));
    }
    if rng.random_bool(0.5) {
        let attr = nb.select[rng.random_range(0..nb.select.len())].clone();
        let dir = if rng.random_bool(0.5) { OrderDir::Asc } else { OrderDir::Desc };
        nb.order = Some(OrderSpec { attr, dir });
    }
    if rng.random_bool(0.4) {
        let attr = nb.select[rng.random_range(0..nb.select.len())].clone();
        let dir = if rng.random_bool(0.5) { SuperDir::Most } else { SuperDir::Least };
        nb.superlative = Some(Superlative { dir, k: rng.random_range(1..=4u64), attr });
    }
    Some(VisQuery { chart: prev.chart, query: SetQuery::simple(nb) })
}

/// FNV-1a digest of a case's full `Debug` rendering — the determinism tests
/// pin this for a known seed and re-check it across threads and processes.
pub fn case_digest(seed: u64, index: usize) -> u64 {
    let (db, queries) = gen_case(seed, index);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{db:?}|{queries:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- databases -----------------------------------------------------------

/// Value pool for categorical columns — short, overlapping, LIKE-friendly.
const CATS: [&str; 8] = ["red", "blue", "green", "ash", "oak", "fig", "sun", "moon"];

/// Random database: 1–3 tables, each 3–5 columns. Column 0 of every table is
/// a quantitative "key" with duplicates and occasional NULLs (so joins hit
/// fan-out, misses, and null-key rows). Column names are globally unique
/// (`a0`, `b2`, …) so the executor's lenient suffix resolution stays
/// unambiguous. Later tables may declare an FK to an earlier table's key.
pub fn gen_database(rng: &mut StdRng, index: usize) -> Database {
    let mut db = Database::new(format!("diff_{index}"), "Differential");
    let n_tables = rng.random_range(1..=3usize);
    for ti in 0..n_tables {
        let prefix = char::from(b'a' + ti as u8);
        let n_cols = rng.random_range(3..=5usize);
        let mut cols: Vec<(String, ColumnType)> = vec![(format!("{prefix}0"), ColumnType::Quantitative)];
        for ci in 1..n_cols {
            let ctype = match rng.random_range(0..100u32) {
                0..40 => ColumnType::Categorical,
                40..75 => ColumnType::Quantitative,
                _ => ColumnType::Temporal,
            };
            cols.push((format!("{prefix}{ci}"), ctype));
        }

        // 10% empty tables; otherwise up to 22 rows with 15% duplicates.
        let n_rows = if rng.random_bool(0.1) { 0 } else { rng.random_range(1..=22usize) };
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            if !rows.is_empty() && rng.random_bool(0.15) {
                let i = rng.random_range(0..rows.len());
                let dup = rows[i].clone();
                rows.push(dup);
                continue;
            }
            let mut row = Vec::with_capacity(n_cols);
            // Key column: small range forces duplicate join keys.
            row.push(if rng.random_bool(0.06) {
                Value::Null
            } else {
                Value::Int(rng.random_range(0..12i64))
            });
            for (_, ctype) in &cols[1..] {
                row.push(gen_value(rng, *ctype));
            }
            rows.push(row);
        }

        let col_refs: Vec<(&str, ColumnType)> =
            cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        db.add_table(table_from(&format!("t{ti}"), &col_refs, rows));

        if ti > 0 && rng.random_bool(0.6) {
            let to = rng.random_range(0..ti);
            let to_prefix = char::from(b'a' + to as u8);
            db.add_foreign_key(
                &format!("t{ti}"),
                &format!("{prefix}0"),
                &format!("t{to}"),
                &format!("{to_prefix}0"),
            );
        }
    }
    db
}

fn gen_value(rng: &mut StdRng, ctype: ColumnType) -> Value {
    match ctype {
        ColumnType::Categorical => {
            if rng.random_bool(0.12) {
                Value::Null
            } else {
                Value::text(CATS[rng.random_range(0..CATS.len())])
            }
        }
        ColumnType::Quantitative => {
            if rng.random_bool(0.1) {
                Value::Null
            } else if rng.random_bool(0.3) {
                // One decimal place keeps float sums exactly representable
                // enough for the 1e-6 comparison tolerance.
                Value::Float(rng.random_range(-200..800i64) as f64 / 10.0)
            } else {
                Value::Int(rng.random_range(-20..80i64))
            }
        }
        ColumnType::Temporal => {
            if rng.random_bool(0.1) {
                return Value::Null;
            }
            let year = rng.random_range(2019..=2022i32);
            let month = rng.random_range(1..=12u8);
            let day = rng.random_range(1..=28u8);
            if rng.random_bool(0.25) {
                // Text-encoded date: probes the Text→Timestamp coercion in
                // comparisons and binning.
                Value::text(format!("{year:04}-{month:02}-{day:02}"))
            } else if rng.random_bool(0.3) {
                Value::Time(Timestamp::datetime(
                    year,
                    month,
                    day,
                    rng.random_range(0..24u8),
                    rng.random_range(0..60u8),
                ))
            } else {
                Value::Time(Timestamp::date(year, month, day))
            }
        }
    }
}

// ---- queries -------------------------------------------------------------

/// Snapshot of one table for generation: name plus typed column refs.
struct TableInfo {
    name: String,
    cols: Vec<(ColumnRef, ColumnType)>,
}

fn table_infos(db: &Database) -> Vec<TableInfo> {
    db.tables
        .iter()
        .map(|t| TableInfo {
            name: t.name().to_string(),
            cols: t
                .schema
                .columns
                .iter()
                .map(|c| (ColumnRef::new(t.name(), c.name.clone()), c.ctype))
                .collect(),
        })
        .collect()
}

/// Random well-typed query. The shape mix follows the synthesizer's output
/// distribution: mostly single-table group/bin aggregations, with a tail of
/// joins, subqueries, and compound set operations.
pub fn gen_query(rng: &mut StdRng, db: &Database) -> VisQuery {
    let tables = table_infos(db);
    let shape = rng.random_range(0..100u32);
    let query = match shape {
        0..88 => SetQuery::simple(gen_body(rng, db, &tables, shape)),
        _ => {
            // Compound: two bodies, both projecting a single column so the
            // arities agree.
            let l = gen_set_body(rng, &tables);
            let r = gen_set_body(rng, &tables);
            let op = match rng.random_range(0..3u32) {
                0 => SetOp::Union,
                1 => SetOp::Intersect,
                _ => SetOp::Except,
            };
            SetQuery::Compound { op, left: Box::new(l), right: Box::new(r) }
        }
    };
    let chart = if rng.random_bool(0.5) {
        Some(ChartType::ALL[rng.random_range(0..ChartType::ALL.len())])
    } else {
        None
    };
    VisQuery { chart, query }
}

/// One arm of a compound query: single bare or aggregated column, optional
/// filter.
fn gen_set_body(rng: &mut StdRng, tables: &[TableInfo]) -> QueryBody {
    let t = &tables[rng.random_range(0..tables.len())];
    let (col, ctype) = pick_col(rng, t);
    let attr = if rng.random_bool(0.25) && ctype == ColumnType::Quantitative {
        Attr { agg: AggFunc::Max, col, distinct: false }
    } else {
        Attr { agg: AggFunc::None, col, distinct: false }
    };
    let mut body = QueryBody::simple(t.name.clone(), vec![attr]);
    if rng.random_bool(0.4) {
        body.filter = Some(gen_filter(rng, t, 1));
    }
    body
}

fn pick_col(rng: &mut StdRng, t: &TableInfo) -> (ColumnRef, ColumnType) {
    let (c, ty) = &t.cols[rng.random_range(0..t.cols.len())];
    (c.clone(), *ty)
}

fn pick_col_of(rng: &mut StdRng, t: &TableInfo, ty: ColumnType) -> Option<(ColumnRef, ColumnType)> {
    let matching: Vec<_> = t.cols.iter().filter(|(_, ct)| *ct == ty).collect();
    if matching.is_empty() {
        return None;
    }
    let (c, ct) = matching[rng.random_range(0..matching.len())];
    Some((c.clone(), *ct))
}

fn gen_agg_attr(rng: &mut StdRng, t: &TableInfo) -> Attr {
    if rng.random_bool(0.5) {
        return Attr {
            agg: AggFunc::Count,
            col: ColumnRef::new(t.name.clone(), "*"),
            distinct: false,
        };
    }
    match pick_col_of(rng, t, ColumnType::Quantitative) {
        Some((col, _)) => {
            let agg = match rng.random_range(0..4u32) {
                0 => AggFunc::Sum,
                1 => AggFunc::Avg,
                2 => AggFunc::Max,
                _ => AggFunc::Min,
            };
            Attr { agg, col, distinct: rng.random_bool(0.2) }
        }
        None => {
            let (col, _) = pick_col(rng, t);
            Attr { agg: AggFunc::Count, col, distinct: rng.random_bool(0.3) }
        }
    }
}

fn gen_body(rng: &mut StdRng, db: &Database, tables: &[TableInfo], shape: u32) -> QueryBody {
    let ti = rng.random_range(0..tables.len());
    let t = &tables[ti];
    let mut body = QueryBody::simple(t.name.clone(), vec![]);

    // 30% of bodies pull in a second table through a declared FK.
    if tables.len() > 1 && rng.random_bool(0.3) {
        let fk = db
            .foreign_keys
            .iter()
            .find(|f| f.from_table.eq_ignore_ascii_case(&t.name) || f.to_table.eq_ignore_ascii_case(&t.name));
        if let Some(fk) = fk {
            let other = if fk.from_table.eq_ignore_ascii_case(&t.name) {
                fk.to_table.clone()
            } else {
                fk.from_table.clone()
            };
            // The canonical serialization writes `join <right.table> on
            // left = right`, so the condition must be oriented with `right`
            // referencing the newly joined table.
            let (left, right) = if fk.from_table.eq_ignore_ascii_case(&other) {
                (
                    ColumnRef::new(fk.to_table.clone(), fk.to_column.clone()),
                    ColumnRef::new(fk.from_table.clone(), fk.from_column.clone()),
                )
            } else {
                (
                    ColumnRef::new(fk.from_table.clone(), fk.from_column.clone()),
                    ColumnRef::new(fk.to_table.clone(), fk.to_column.clone()),
                )
            };
            body.from.push(other);
            body.joins.push(JoinCond { left, right });
        }
    }

    match shape {
        // Bare projection of 1–2 columns.
        0..25 => {
            let n = rng.random_range(1..=2usize);
            for _ in 0..n {
                let (col, _) = pick_col(rng, t);
                body.select.push(Attr { agg: AggFunc::None, col, distinct: false });
            }
        }
        // Explicit group-by + aggregate (the canonical bar-chart query).
        25..45 => {
            let (gcol, _) = pick_col(rng, t);
            body.select.push(Attr { agg: AggFunc::None, col: gcol.clone(), distinct: false });
            body.select.push(gen_agg_attr(rng, t));
            let mut group = GroupSpec::by(gcol);
            if rng.random_bool(0.25) {
                let (g2, _) = pick_col(rng, t);
                if !group.group_by.contains(&g2) {
                    group.group_by.push(g2);
                    body.select.insert(1, Attr {
                        agg: AggFunc::None,
                        col: group.group_by[1].clone(),
                        distinct: false,
                    });
                }
            }
            body.group = Some(group);
        }
        // Binned aggregate (temporal unit or numeric buckets).
        45..60 => {
            let (bcol, unit) = match pick_col_of(rng, t, ColumnType::Temporal) {
                Some((c, _)) if rng.random_bool(0.7) => {
                    let unit = match rng.random_range(0..6u32) {
                        0 => BinUnit::Minute,
                        1 => BinUnit::Hour,
                        2 => BinUnit::Weekday,
                        3 => BinUnit::Month,
                        4 => BinUnit::Quarter,
                        _ => BinUnit::Year,
                    };
                    (c, unit)
                }
                _ => {
                    let (c, _) = pick_col_of(rng, t, ColumnType::Quantitative)
                        .unwrap_or_else(|| pick_col(rng, t));
                    (c, BinUnit::Numeric { n_bins: rng.random_range(2..=10u32) })
                }
            };
            body.select.push(Attr { agg: AggFunc::None, col: bcol.clone(), distinct: false });
            body.select.push(gen_agg_attr(rng, t));
            body.group = Some(GroupSpec { group_by: vec![], bin: Some(BinSpec { col: bcol, unit }) });
        }
        // Global aggregate (no grouping at all).
        60..72 => {
            let n = rng.random_range(1..=2usize);
            for _ in 0..n {
                body.select.push(gen_agg_attr(rng, t));
            }
        }
        // Implicit grouping: bare column + aggregate, no GROUP BY clause.
        72..80 => {
            let (col, _) = pick_col(rng, t);
            body.select.push(Attr { agg: AggFunc::None, col, distinct: false });
            body.select.push(gen_agg_attr(rng, t));
        }
        // Subquery in the filter (IN-subquery or scalar comparison).
        _ => {
            let (col, _) = pick_col(rng, t);
            body.select.push(Attr { agg: AggFunc::None, col, distinct: false });
            body.select.push(gen_agg_attr(rng, t));
            body.filter = Some(gen_subquery_pred(rng, tables, t));
        }
    }

    // Filter (unless the shape already set one).
    if body.filter.is_none() && rng.random_bool(0.55) {
        let leaves = rng.random_range(1..=3usize);
        body.filter = Some(gen_filter(rng, t, leaves));
    }
    // HAVING: append an aggregated leaf to the top-level AND chain.
    let grouped = body.group.is_some() || body.select.iter().any(Attr::is_aggregated);
    if grouped && rng.random_bool(0.12) {
        let having = Predicate::Cmp {
            op: if rng.random_bool(0.5) { CmpOp::Ge } else { CmpOp::Lt },
            attr: gen_agg_attr(rng, t),
            rhs: Operand::Lit(Literal::Int(rng.random_range(0..6i64))),
        };
        body.filter = Predicate::and_opt(body.filter.take(), Some(having));
    }

    // ORDER BY: usually a select attribute, sometimes a bare non-select
    // column (probes the first-non-null group-order quirk).
    if rng.random_bool(0.35) && !body.select.is_empty() {
        let attr = if rng.random_bool(0.8) {
            body.select[rng.random_range(0..body.select.len())].clone()
        } else {
            let (col, _) = pick_col(rng, t);
            Attr { agg: AggFunc::None, col, distinct: false }
        };
        let dir = if rng.random_bool(0.5) { OrderDir::Asc } else { OrderDir::Desc };
        body.order = Some(OrderSpec { attr, dir });
    }
    // Superlative (top/bottom k).
    if rng.random_bool(0.25) && !body.select.is_empty() {
        let attr = body.select[rng.random_range(0..body.select.len())].clone();
        let dir = if rng.random_bool(0.5) { SuperDir::Most } else { SuperDir::Least };
        body.superlative = Some(Superlative { dir, k: rng.random_range(1..=5u64), attr });
    }

    // Aggregated ORDER BY / superlative attrs on an *ungrouped* body: the
    // executor ignores the aggregate and reads the raw column — the oracle
    // must reproduce exactly that quirk.
    if !grouped && rng.random_bool(0.08) {
        if let Some(o) = &mut body.order {
            if !o.attr.col.is_star() {
                o.attr.agg = AggFunc::Max;
            }
        }
        if let Some(s) = &mut body.superlative {
            if !s.attr.col.is_star() {
                s.attr.agg = AggFunc::Min;
            }
        }
    }

    // Lenient-resolution probe: a bogus qualifier whose column suffix is
    // still globally unique must resolve identically in both engines.
    if rng.random_bool(0.05) {
        if let Some(a) = body.select.first_mut() {
            if !a.col.is_star() {
                a.col.table = "zz".into();
            }
        }
    }

    if body.select.is_empty() {
        let (col, _) = pick_col(rng, t);
        body.select.push(Attr { agg: AggFunc::None, col, distinct: false });
    }
    body
}

/// Random 1–3-leaf filter tree over the table's columns, joined with
/// And/Or. Roughly 65% of comparison literals come from actual column data
/// so predicates select non-trivial subsets.
fn gen_filter(rng: &mut StdRng, t: &TableInfo, leaves: usize) -> Predicate {
    let mut p = gen_leaf(rng, t);
    for _ in 1..leaves {
        let next = gen_leaf(rng, t);
        p = if rng.random_bool(0.5) {
            Predicate::And(Box::new(p), Box::new(next))
        } else {
            Predicate::Or(Box::new(p), Box::new(next))
        };
    }
    p
}

fn gen_leaf(rng: &mut StdRng, t: &TableInfo) -> Predicate {
    let (col, ctype) = pick_col(rng, t);
    let attr = Attr { agg: AggFunc::None, col, distinct: false };
    match ctype {
        ColumnType::Categorical => match rng.random_range(0..3u32) {
            0 => Predicate::Cmp {
                op: if rng.random_bool(0.7) { CmpOp::Eq } else { CmpOp::Ne },
                attr,
                rhs: Operand::Lit(Literal::Text(CATS[rng.random_range(0..CATS.len())].into())),
            },
            1 => Predicate::Like {
                attr,
                pattern: ["%e%", "_u%", "%o", "a%", "%ig%"][rng.random_range(0..5usize)].into(),
                negated: rng.random_bool(0.25),
            },
            _ => Predicate::In {
                attr,
                rhs: Operand::List(
                    (0..rng.random_range(1..=3usize))
                        .map(|_| Literal::Text(CATS[rng.random_range(0..CATS.len())].into()))
                        .collect(),
                ),
                negated: rng.random_bool(0.25),
            },
        },
        ColumnType::Quantitative => {
            if rng.random_bool(0.3) {
                let lo = rng.random_range(-20..40i64);
                Predicate::Between {
                    attr,
                    low: Operand::Lit(Literal::Int(lo)),
                    high: Operand::Lit(Literal::Int(lo + rng.random_range(0..40i64))),
                }
            } else {
                let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge]
                    [rng.random_range(0..6usize)];
                let lit = if rng.random_bool(0.25) {
                    Literal::Float(rng.random_range(-200..800i64) as f64 / 10.0)
                } else {
                    Literal::Int(rng.random_range(-20..80i64))
                };
                Predicate::Cmp { op, attr, rhs: Operand::Lit(lit) }
            }
        }
        ColumnType::Temporal => {
            let op = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][rng.random_range(0..4usize)];
            let date = format!(
                "{:04}-{:02}-{:02}",
                rng.random_range(2019..=2022i32),
                rng.random_range(1..=12u8),
                rng.random_range(1..=28u8),
            );
            Predicate::Cmp { op, attr, rhs: Operand::Lit(Literal::Text(date)) }
        }
    }
}

/// A filter whose right side nests a full subquery: either `col IN (select
/// col from t2)` or a scalar comparison against a global aggregate (always
/// one row, so the comparison is order-insensitive).
fn gen_subquery_pred(rng: &mut StdRng, tables: &[TableInfo], t: &TableInfo) -> Predicate {
    let sub_t = &tables[rng.random_range(0..tables.len())];
    if rng.random_bool(0.5) {
        let (outer, _) = pick_col_of(rng, t, ColumnType::Quantitative)
            .unwrap_or_else(|| pick_col(rng, t));
        let (inner, _) = pick_col_of(rng, sub_t, ColumnType::Quantitative)
            .unwrap_or_else(|| pick_col(rng, sub_t));
        let sub = QueryBody::simple(
            sub_t.name.clone(),
            vec![Attr { agg: AggFunc::None, col: inner, distinct: false }],
        );
        Predicate::In {
            attr: Attr { agg: AggFunc::None, col: outer, distinct: false },
            rhs: Operand::Subquery(Box::new(SetQuery::simple(sub))),
            negated: rng.random_bool(0.3),
        }
    } else {
        let (outer, _) = pick_col_of(rng, t, ColumnType::Quantitative)
            .unwrap_or_else(|| pick_col(rng, t));
        let sub = QueryBody::simple(sub_t.name.clone(), vec![gen_agg_attr(rng, sub_t)]);
        Predicate::Cmp {
            op: [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][rng.random_range(0..4usize)],
            attr: Attr { agg: AggFunc::None, col: outer, distinct: false },
            rhs: Operand::Subquery(Box::new(SetQuery::simple(sub))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_case() {
        for i in 0..20 {
            let a = gen_case(42, i);
            let b = gen_case(42, i);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "case {i}");
        }
    }

    #[test]
    fn different_indices_differ() {
        assert_ne!(case_digest(42, 0), case_digest(42, 1));
        assert_ne!(case_digest(42, 0), case_digest(43, 0));
    }

    #[test]
    fn generated_queries_mostly_execute() {
        // The generator is allowed to produce queries that error (both
        // engines must simply agree), but the overwhelming majority should
        // run clean or the differential signal is weak.
        let mut ok = 0usize;
        let mut total = 0usize;
        for i in 0..60 {
            let (db, queries) = gen_case(7, i);
            for q in &queries {
                total += 1;
                if nv_data::execute(&db, q).is_ok() {
                    ok += 1;
                }
            }
        }
        assert!(ok * 10 >= total * 9, "only {ok}/{total} queries executed cleanly");
    }

    /// Regression: the canonical serializer writes `join <right.table> on
    /// left = right`, so every generated join condition must be oriented
    /// with `right` referencing the newly joined table. A flipped FK
    /// condition used to serialize as a self-join of the base table and
    /// re-parse to a different AST (caught by the round-trip property).
    #[test]
    fn fk_join_conditions_reference_the_joined_table() {
        let mut joins = 0usize;
        for case in 0..400 {
            let (_db, queries) = gen_case(0xFEED, case);
            for q in &queries {
                for b in q.query.bodies() {
                    for (i, j) in b.joins.iter().enumerate() {
                        let joined = &b.from[i + 1];
                        assert!(
                            j.right.table.eq_ignore_ascii_case(joined),
                            "join {i} of {:?} joins table {joined:?} but its \
                             condition right side is {:?}",
                            b.from,
                            j.right
                        );
                        joins += 1;
                    }
                }
            }
        }
        assert!(joins > 50, "only {joins} joins generated — probe too weak");
    }
}
