//! Metamorphic laws: algebraic identities the executor must satisfy with no
//! reference oracle at all. Each law transforms a generated query into a
//! variant whose result multiset is provably related to the original, runs
//! both through `nv_data::execute`, and compares.
//!
//! A law is *skipped* (not violated) when either side errors: legal
//! short-circuit semantics mean a transformed query may surface an error the
//! original skipped (e.g. swapping `AND` operands stops hiding an erroring
//! right-hand side), and error agreement is already the differential
//! runner's job.

use crate::gen;
use crate::interp::split_where_having;
use nv_ast::*;
use nv_data::{execute, Database, ResultSet, Value};
use nv_synth::strip_order;

/// Outcome of one law over a batch of generated cases.
#[derive(Debug, Clone)]
pub struct LawReport {
    pub name: &'static str,
    /// Query pairs actually compared (law applied and both sides ran).
    pub checked: usize,
    /// Pairs where both sides errored or the law did not apply.
    pub skipped: usize,
    /// Violation descriptions (empty = law held everywhere it applied).
    pub violations: Vec<String>,
}

impl LawReport {
    fn new(name: &'static str) -> LawReport {
        LawReport { name, checked: 0, skipped: 0, violations: Vec::new() }
    }

    pub fn held(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Check all laws over `cases` generated cases. Returns one report per law.
pub fn run_laws(seed: u64, cases: usize) -> Vec<LawReport> {
    let mut and_commute = LawReport::new("and-commute");
    let mut union_commute = LawReport::new("union-commute");
    let mut intersect_commute = LawReport::new("intersect-commute");
    let mut except_self = LawReport::new("except-self-empty");
    let mut limit_prefix = LawReport::new("limit-prefix");
    let mut bin_cover = LawReport::new("bin-partition-cover");
    let mut order_free = LawReport::new("order-insensitive");

    for case in 0..cases {
        let (db, queries) = gen::gen_case(seed, case);
        let ctx = |qi: usize| format!("seed={seed} case={case} query={qi}");
        for (qi, q) in queries.iter().enumerate() {
            check_and_commute(&db, q, &mut and_commute, &ctx(qi));
            check_set_commute(&db, q, &mut union_commute, &mut intersect_commute, &ctx(qi));
            check_except_self(&db, q, &mut except_self, &ctx(qi));
            check_limit_prefix(&db, q, &mut limit_prefix, &ctx(qi));
            check_bin_cover(&db, q, &mut bin_cover, &ctx(qi));
            check_order_free(&db, q, &mut order_free, &ctx(qi));
        }
    }

    vec![
        and_commute,
        union_commute,
        intersect_commute,
        except_self,
        limit_prefix,
        bin_cover,
        order_free,
    ]
}

/// Both ran → compare; otherwise skip.
fn compare_multisets(
    a: Result<ResultSet, nv_data::ExecError>,
    b: Result<ResultSet, nv_data::ExecError>,
    strict_columns: bool,
    report: &mut LawReport,
    detail: &str,
) {
    match (a, b) {
        (Ok(ra), Ok(rb)) => {
            report.checked += 1;
            let eq = if strict_columns { ra.multiset_eq(&rb) } else { ra.data_eq(&rb) };
            if !eq {
                report.violations.push(format!(
                    "{detail}: {} rows vs {} rows\n  a: {:?}\n  b: {:?}",
                    ra.rows.len(),
                    rb.rows.len(),
                    ra.rows.iter().take(6).collect::<Vec<_>>(),
                    rb.rows.iter().take(6).collect::<Vec<_>>(),
                ));
            }
        }
        _ => report.skipped += 1,
    }
}

/// `WHERE (p AND q)` ≡ `WHERE (q AND p)` as a multiset, for every body whose
/// filter is a top-level conjunction.
fn check_and_commute(db: &Database, q: &VisQuery, report: &mut LawReport, ctx: &str) {
    let bodies = q.query.bodies();
    for (bi, body) in bodies.iter().enumerate() {
        let Some(Predicate::And(l, r)) = &body.filter else { continue };
        let swapped = Predicate::And(r.clone(), l.clone());
        let mut q2 = q.clone();
        q2.query.bodies_mut()[bi].filter = Some(swapped);
        compare_multisets(
            execute(db, q),
            execute(db, &q2),
            true,
            report,
            &format!("{ctx} body={bi}"),
        );
    }
}

/// `A UNION B` ≡ `B UNION A` and `A INTERSECT B` ≡ `B INTERSECT A` as
/// multisets (column names follow the left arm, so only row data compares).
fn check_set_commute(
    db: &Database,
    q: &VisQuery,
    union_report: &mut LawReport,
    intersect_report: &mut LawReport,
    ctx: &str,
) {
    let SetQuery::Compound { op, left, right } = &q.query else { return };
    let report = match op {
        SetOp::Union => union_report,
        SetOp::Intersect => intersect_report,
        SetOp::Except => return,
    };
    let swapped = VisQuery {
        chart: q.chart,
        query: SetQuery::Compound { op: *op, left: right.clone(), right: left.clone() },
    };
    compare_multisets(execute(db, q), execute(db, &swapped), false, report, ctx);
}

/// `A EXCEPT A` is empty for every body.
fn check_except_self(db: &Database, q: &VisQuery, report: &mut LawReport, ctx: &str) {
    let body = q.query.primary().clone();
    let probe = VisQuery {
        chart: None,
        query: SetQuery::Compound {
            op: SetOp::Except,
            left: Box::new(body.clone()),
            right: Box::new(body),
        },
    };
    match execute(db, &probe) {
        Ok(rs) => {
            report.checked += 1;
            if !rs.rows.is_empty() {
                report.violations.push(format!(
                    "{ctx}: A EXCEPT A returned {} rows: {:?}",
                    rs.rows.len(),
                    rs.rows.iter().take(6).collect::<Vec<_>>()
                ));
            }
        }
        Err(_) => report.skipped += 1,
    }
}

/// With ORDER BY stripped, a `top/bottom k` result is the exact row-for-row
/// prefix of the same query with `k + 1` (the superlative sorts, truncates,
/// and nothing re-sorts afterwards).
fn check_limit_prefix(db: &Database, q: &VisQuery, report: &mut LawReport, ctx: &str) {
    let primary = q.query.primary();
    let Some(sup) = &primary.superlative else { return };
    let mut small = q.clone();
    let mut big = q.clone();
    for v in [&mut small, &mut big] {
        for b in v.query.bodies_mut() {
            b.order = None;
        }
    }
    big.query.primary_mut().superlative = Some(Superlative { k: sup.k + 1, ..sup.clone() });
    match (execute(db, &small), execute(db, &big)) {
        (Ok(s), Ok(b)) => {
            report.checked += 1;
            if s.rows.as_slice() != &b.rows[..s.rows.len().min(b.rows.len())]
                || s.rows.len() > b.rows.len()
            {
                report.violations.push(format!(
                    "{ctx}: top-{} is not a prefix of top-{}\n  k:   {:?}\n  k+1: {:?}",
                    sup.k,
                    sup.k + 1,
                    s.rows,
                    b.rows
                ));
            }
        }
        _ => report.skipped += 1,
    }
}

/// Binning partitions the scan: summing per-bin `COUNT(*)` over a query's
/// FROM/JOIN/WHERE (HAVING dropped) equals the global `COUNT(*)` of the same
/// scan — every input row lands in exactly one bin, including the NULL
/// bucket.
fn check_bin_cover(db: &Database, q: &VisQuery, report: &mut LawReport, ctx: &str) {
    let body = q.query.primary();
    let Some(bin) = body.group.as_ref().and_then(|g| g.bin.clone()) else { return };
    let where_only = body.filter.clone().and_then(|p| split_where_having(p).0);
    let count_star = Attr {
        agg: AggFunc::Count,
        col: ColumnRef::new(body.from[0].clone(), "*"),
        distinct: false,
    };
    let base = QueryBody {
        select: vec![count_star],
        from: body.from.clone(),
        joins: body.joins.clone(),
        filter: where_only,
        group: None,
        order: None,
        superlative: None,
    };
    let mut per_bin = base.clone();
    per_bin.group = Some(GroupSpec { group_by: vec![], bin: Some(bin) });
    let per_bin_q = VisQuery { chart: None, query: SetQuery::simple(per_bin) };
    let global_q = VisQuery { chart: None, query: SetQuery::simple(base) };
    match (execute(db, &per_bin_q), execute(db, &global_q)) {
        (Ok(bins), Ok(global)) => {
            report.checked += 1;
            let sum: i64 = bins
                .rows
                .iter()
                .map(|r| if let Some(Value::Int(n)) = r.first() { *n } else { 0 })
                .sum();
            let total = match global.rows.first().and_then(|r| r.first()) {
                Some(Value::Int(n)) => *n,
                _ => -1,
            };
            if sum != total {
                report.violations.push(format!(
                    "{ctx}: per-bin counts sum to {sum} but the scan has {total} rows \
                     (bins: {:?})",
                    bins.rows
                ));
            }
        }
        _ => report.skipped += 1,
    }
}

/// Removing ORDER BY never changes *which* rows come back, only their
/// sequence: `execute(q)` and `execute(strip_order(q))` agree as multisets.
fn check_order_free(db: &Database, q: &VisQuery, report: &mut LawReport, ctx: &str) {
    if q.query.bodies().iter().all(|b| b.order.is_none()) {
        return;
    }
    compare_multisets(execute(db, q), execute(db, &strip_order(q)), true, report, ctx);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laws_hold_on_small_batch() {
        let reports = run_laws(0x1A55, 60);
        assert_eq!(reports.len(), 7);
        for r in &reports {
            assert!(r.held(), "law '{}' violated:\n{}", r.name, r.violations.join("\n"));
        }
        // The batch must actually exercise a healthy majority of the laws —
        // a law that never fires is not evidence.
        let fired = reports.iter().filter(|r| r.checked > 0).count();
        assert!(fired >= 5, "only {fired}/7 laws fired: {reports:?}");
    }
}
