//! The reference interpreter: a deliberately slow, obviously-correct
//! evaluator for the full unified AST.
//!
//! Everything here is straight-line nested loops over owned `Vec`s — no hash
//! maps, no memoization, no borrowed scans, no budgets. Joins are nested
//! loops, DISTINCT is a linear membership scan, set operations dedup by
//! scanning, group discovery walks the group list per row. The point is that
//! each clause's semantics can be checked against the paper (and against
//! SQL) by reading a single screen of code, so that when the production
//! executor in `nv-data` and this interpreter disagree, the interpreter is
//! the one you trust first.
//!
//! The interpreter pins the *same observable semantics* as `nv_data::exec`,
//! including the deliberate ones that differ from stock SQL:
//!
//! * WHERE/HAVING are split from one `filter` by walking the top-level AND
//!   chain; any leaf touching an aggregated attribute becomes HAVING.
//! * Aggregates without GROUP BY group implicitly by the bare select
//!   columns; a global aggregate over an empty scan still yields one row.
//! * `AND`/`OR` short-circuit left-to-right (observable through errors).
//! * Superlatives stable-sort by their attribute and truncate to `k`
//!   *before* ORDER BY re-sorts the survivors.
//! * Set operations dedup both sides (SQL set semantics), keep the left
//!   side's representative for equal rows, and sort the result.
//! * NULLs: excluded from join keys, first under the total order, `false`
//!   in every predicate, skipped by aggregates (`COUNT(*)` counts rows).

use nv_ast::*;
use nv_data::{ColumnType, Database, ExecError, ResultSet, Value};

/// Execute a query with the reference semantics. Same signature and same
/// error surface as [`nv_data::execute`]; any observable difference between
/// the two is a bug in one of them.
pub fn oracle_execute(db: &Database, q: &VisQuery) -> Result<ResultSet, ExecError> {
    eval_set(db, &q.query)
}

/// An intermediate relation: qualified column names, types, owned rows.
struct Frame {
    cols: Vec<String>,
    types: Vec<ColumnType>,
    rows: Vec<Vec<Value>>,
}

fn eval_set(db: &Database, q: &SetQuery) -> Result<ResultSet, ExecError> {
    match q {
        SetQuery::Simple(b) => eval_body(db, b),
        SetQuery::Compound { op, left, right } => {
            let l = eval_body(db, left)?;
            let r = eval_body(db, right)?;
            if l.columns.len() != r.columns.len() {
                return Err(ExecError::ArityMismatch {
                    left: l.columns.len(),
                    right: r.columns.len(),
                });
            }
            // SQL set semantics by brute force: dedup each side with linear
            // membership scans (first occurrence is the representative),
            // then combine.
            let ld = dedup_rows(l.rows);
            let rd = dedup_rows(r.rows);
            let mut rows: Vec<Vec<Value>> = Vec::new();
            match op {
                SetOp::Intersect => {
                    for row in ld {
                        if contains_row(&rd, &row) {
                            rows.push(row);
                        }
                    }
                }
                SetOp::Except => {
                    for row in ld {
                        if !contains_row(&rd, &row) {
                            rows.push(row);
                        }
                    }
                }
                SetOp::Union => {
                    rows = ld;
                    for row in rd {
                        if !contains_row(&rows, &row) {
                            rows.push(row);
                        }
                    }
                }
            }
            rows.sort_by(|a, b| cmp_rows(a, b));
            Ok(ResultSet { columns: l.columns, types: l.types, rows })
        }
    }
}

fn dedup_rows(rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = Vec::new();
    for row in rows {
        if !contains_row(&out, &row) {
            out.push(row);
        }
    }
    out
}

fn contains_row(rows: &[Vec<Value>], row: &[Value]) -> bool {
    rows.iter().any(|r| r.as_slice() == row)
}

/// Total order over rows, position by position (nulls first; cross-type by
/// type rank) — the same order the executor sorts set-operation output with.
pub fn cmp_rows(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let c = x.total_cmp(y);
        if c != std::cmp::Ordering::Equal {
            return c;
        }
    }
    std::cmp::Ordering::Equal
}

fn eval_body(db: &Database, body: &QueryBody) -> Result<ResultSet, ExecError> {
    let (where_p, having_p) = match body.filter.clone() {
        Some(p) => split_where_having(p),
        None => (None, None),
    };

    // FROM / JOIN, then WHERE row by row.
    let rel = build_from(db, body)?;
    let mut kept: Vec<Vec<Value>> = Vec::new();
    for row in &rel.rows {
        let keep = match &where_p {
            Some(p) => eval_row_pred(db, &rel, row, p)?,
            None => true,
        };
        if keep {
            kept.push(row.clone());
        }
    }
    let scan = Frame { cols: rel.cols, types: rel.types, rows: kept };

    let explicit_group = body.group.clone().filter(|g| !g.is_empty());
    let has_agg = body.select.iter().any(Attr::is_aggregated) || having_p.is_some();
    let grouped = explicit_group.is_some() || has_agg;

    let columns: Vec<String> = body.select.iter().map(attr_display).collect();
    let types: Vec<ColumnType> = body.select.iter().map(|a| attr_out_type(&scan, a)).collect();

    // Each output row carries its ORDER BY and superlative sort values.
    let mut out_rows: Vec<(Vec<Value>, Option<Value>, Option<Value>)> = Vec::new();

    if grouped {
        let (key_cols, bin): (Vec<ColumnRef>, Option<BinSpec>) = match &explicit_group {
            Some(g) => (g.group_by.clone(), g.bin.clone()),
            None => (
                body.select
                    .iter()
                    .filter(|a| !a.is_aggregated())
                    .map(|a| a.col.clone())
                    .collect(),
                None,
            ),
        };
        let entries = group_entries(&scan, &key_cols, &bin)?;
        let bin_col = bin.as_ref().map(|b| b.col.clone());
        for entry in &entries {
            if let Some(h) = &having_p {
                if !eval_group_pred(db, &scan, &entry.rows, h)? {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(body.select.len());
            for a in &body.select {
                // The binned column projects its bin label.
                if a.agg == AggFunc::None && Some(&a.col) == bin_col.as_ref() {
                    out.push(entry.label.clone());
                    continue;
                }
                // Grouping keys project the key value directly.
                if a.agg == AggFunc::None {
                    if let Some(pos) = key_cols.iter().position(|c| *c == a.col) {
                        out.push(entry.key[pos].clone());
                        continue;
                    }
                }
                out.push(group_attr_value(&scan, &entry.rows, a)?);
            }
            let ord_v = match &body.order {
                Some(o) => Some(order_value(&scan, entry, &key_cols, &o.attr)?),
                None => None,
            };
            let sup_v = match &body.superlative {
                Some(s) => Some(order_value(&scan, entry, &key_cols, &s.attr)?),
                None => None,
            };
            out_rows.push((out, ord_v, sup_v));
        }
    } else {
        let sel_idx: Vec<usize> = body
            .select
            .iter()
            .map(|a| col_idx(&scan.cols, &a.col))
            .collect::<Result<_, _>>()?;
        // Ungrouped ORDER BY / superlative read the raw column of the
        // attribute; any aggregate function on it is ignored here (the
        // executor does the same — aggregates only trigger grouping from
        // the select list or HAVING).
        let ord_idx = match &body.order {
            Some(o) => Some(col_idx(&scan.cols, &o.attr.col)?),
            None => None,
        };
        let sup_idx = match &body.superlative {
            Some(s) => Some(col_idx(&scan.cols, &s.attr.col)?),
            None => None,
        };
        for row in &scan.rows {
            let out: Vec<Value> = sel_idx.iter().map(|&i| row[i].clone()).collect();
            out_rows.push((
                out,
                ord_idx.map(|i| row[i].clone()),
                sup_idx.map(|i| row[i].clone()),
            ));
        }
    }

    // Superlative first: stable sort by its value over the deterministic
    // group/scan order, then truncate to k…
    if let Some(s) = &body.superlative {
        out_rows.sort_by(|a, b| {
            let av = a.2.as_ref().unwrap_or(&Value::Null);
            let bv = b.2.as_ref().unwrap_or(&Value::Null);
            let c = av.total_cmp(bv);
            match s.dir {
                SuperDir::Most => c.reverse(),
                SuperDir::Least => c,
            }
        });
        out_rows.truncate(s.k as usize);
    }
    // …then ORDER BY re-sorts whatever survived.
    if let Some(o) = &body.order {
        out_rows.sort_by(|a, b| {
            let av = a.1.as_ref().unwrap_or(&Value::Null);
            let bv = b.1.as_ref().unwrap_or(&Value::Null);
            let c = av.total_cmp(bv);
            match o.dir {
                OrderDir::Asc => c,
                OrderDir::Desc => c.reverse(),
            }
        });
    }

    Ok(ResultSet { columns, types, rows: out_rows.into_iter().map(|(r, _, _)| r).collect() })
}

// ---- FROM / JOIN ---------------------------------------------------------

fn load_table(db: &Database, name: &str) -> Result<Frame, ExecError> {
    let t = db
        .table(name)
        .ok_or_else(|| ExecError::UnknownTable(name.to_string()))?;
    Ok(Frame {
        cols: t
            .schema
            .columns
            .iter()
            .map(|c| format!("{}.{}", t.name(), c.name))
            .collect(),
        types: t.schema.columns.iter().map(|c| c.ctype).collect(),
        rows: t.rows.clone(),
    })
}

fn build_from(db: &Database, body: &QueryBody) -> Result<Frame, ExecError> {
    let first = body
        .from
        .first()
        .ok_or_else(|| ExecError::Unsupported("empty FROM".into()))?;
    let mut rel = load_table(db, first)?;
    let mut joined: Vec<String> = vec![first.to_lowercase()];

    for (i, table) in body.from.iter().enumerate().skip(1) {
        let right = load_table(db, table)?;
        let cond = body.joins.iter().find(|j| {
            let lt = j.left.table.to_lowercase();
            let rt = j.right.table.to_lowercase();
            (rt == table.to_lowercase() && joined.contains(&lt))
                || (lt == table.to_lowercase() && joined.contains(&rt))
        });
        rel = match cond {
            Some(j) => {
                let (old_side, new_side) = if j.right.table.eq_ignore_ascii_case(table) {
                    (&j.left, &j.right)
                } else {
                    (&j.right, &j.left)
                };
                nested_loop_join(rel, right, old_side, new_side)?
            }
            None if body.joins.is_empty() => cross_join(rel, right),
            None => {
                return Err(ExecError::Unsupported(format!(
                    "no join condition connects table '{table}' (position {i})"
                )))
            }
        };
        joined.push(table.to_lowercase());
    }
    Ok(rel)
}

/// Equi-join by scanning every (left, right) pair. NULL keys never match.
fn nested_loop_join(l: Frame, r: Frame, lkey: &ColumnRef, rkey: &ColumnRef) -> Result<Frame, ExecError> {
    let li = col_idx(&l.cols, lkey)?;
    let ri = col_idx(&r.cols, rkey)?;
    let mut rows = Vec::new();
    for lr in &l.rows {
        for rr in &r.rows {
            if !lr[li].is_null() && !rr[ri].is_null() && lr[li] == rr[ri] {
                let mut row = lr.clone();
                row.extend(rr.iter().cloned());
                rows.push(row);
            }
        }
    }
    let mut cols = l.cols;
    cols.extend(r.cols);
    let mut types = l.types;
    types.extend(r.types);
    Ok(Frame { cols, types, rows })
}

fn cross_join(l: Frame, r: Frame) -> Frame {
    let mut rows = Vec::new();
    for lr in &l.rows {
        for rr in &r.rows {
            let mut row = lr.clone();
            row.extend(rr.iter().cloned());
            rows.push(row);
        }
    }
    let mut cols = l.cols;
    cols.extend(r.cols);
    let mut types = l.types;
    types.extend(r.types);
    Frame { cols, types, rows }
}

/// Column resolution: exact `table.column` match first, then a unique
/// unqualified suffix match (the executor's lenient mode).
fn col_idx(cols: &[String], c: &ColumnRef) -> Result<usize, ExecError> {
    let want = format!("{}.{}", c.table, c.column).to_lowercase();
    if let Some(i) = cols.iter().position(|n| n.to_lowercase() == want) {
        return Ok(i);
    }
    let suffix = format!(".{}", c.column.to_lowercase());
    let mut only: Option<usize> = None;
    for (i, n) in cols.iter().enumerate() {
        if n.to_lowercase().ends_with(&suffix) {
            if only.is_some() {
                return Err(ExecError::UnknownColumn(c.to_token()));
            }
            only = Some(i);
        }
    }
    only.ok_or_else(|| ExecError::UnknownColumn(c.to_token()))
}

// ---- WHERE / HAVING ------------------------------------------------------

/// Does any leaf of the predicate reference an aggregated attribute?
pub fn pred_has_agg(p: &Predicate) -> bool {
    let mut found = false;
    p.for_each_leaf(&mut |leaf| {
        let attr = match leaf {
            Predicate::Cmp { attr, .. }
            | Predicate::Between { attr, .. }
            | Predicate::Like { attr, .. }
            | Predicate::In { attr, .. } => attr,
            _ => return,
        };
        if attr.is_aggregated() {
            found = true;
        }
    });
    found
}

/// Split one filter into (pre-group WHERE, post-group HAVING) by walking the
/// top-level AND chain — aggregated leaves become HAVING. Public so the
/// metamorphic-law layer can build law queries from the WHERE part alone.
pub fn split_where_having(p: Predicate) -> (Option<Predicate>, Option<Predicate>) {
    match p {
        Predicate::And(l, r) => {
            let (lw, lh) = split_where_having(*l);
            let (rw, rh) = split_where_having(*r);
            (Predicate::and_opt(lw, rw), Predicate::and_opt(lh, rh))
        }
        other => {
            if pred_has_agg(&other) {
                (None, Some(other))
            } else {
                (Some(other), None)
            }
        }
    }
}

fn cmp_values(a: &Value, b: &Value, op: CmpOp) -> bool {
    use std::cmp::Ordering::*;
    match a.sql_cmp(b) {
        None => false,
        Some(ord) => match op {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        },
    }
}

/// Literal operands yield one value; lists yield many; subqueries execute
/// from scratch (no memo) and contribute their first column.
fn operand_values(db: &Database, o: &Operand) -> Result<Vec<Value>, ExecError> {
    match o {
        Operand::Lit(l) => Ok(vec![Value::from_literal(l)]),
        Operand::List(ls) => Ok(ls.iter().map(Value::from_literal).collect()),
        Operand::Subquery(q) => {
            let rs = eval_set(db, q)?;
            Ok(rs.rows.iter().filter_map(|r| r.first().cloned()).collect())
        }
    }
}

fn row_attr_value(rel: &Frame, row: &[Value], attr: &Attr) -> Result<Value, ExecError> {
    if attr.is_aggregated() {
        return Err(ExecError::Unsupported(
            "aggregate in row-level predicate (belongs to HAVING)".into(),
        ));
    }
    let i = col_idx(&rel.cols, &attr.col)?;
    Ok(row[i].clone())
}

/// Row-level predicate; AND/OR short-circuit left to right, exactly like the
/// executor (short-circuiting is observable when the skipped side would
/// error).
fn eval_row_pred(db: &Database, rel: &Frame, row: &[Value], p: &Predicate) -> Result<bool, ExecError> {
    match p {
        Predicate::And(l, r) => {
            Ok(eval_row_pred(db, rel, row, l)? && eval_row_pred(db, rel, row, r)?)
        }
        Predicate::Or(l, r) => {
            Ok(eval_row_pred(db, rel, row, l)? || eval_row_pred(db, rel, row, r)?)
        }
        Predicate::Cmp { op, attr, rhs } => {
            let v = row_attr_value(rel, row, attr)?;
            let rv = operand_values(db, rhs)?;
            let Some(first) = rv.first() else { return Ok(false) };
            Ok(cmp_values(&v, first, *op))
        }
        Predicate::Between { attr, low, high } => {
            let v = row_attr_value(rel, row, attr)?;
            let lo = operand_values(db, low)?;
            let hi = operand_values(db, high)?;
            match (lo.first(), hi.first()) {
                (Some(lo), Some(hi)) => {
                    Ok(cmp_values(&v, lo, CmpOp::Ge) && cmp_values(&v, hi, CmpOp::Le))
                }
                _ => Ok(false),
            }
        }
        Predicate::Like { attr, pattern, negated } => {
            let v = row_attr_value(rel, row, attr)?;
            if v.is_null() {
                return Ok(false);
            }
            Ok(v.like(pattern) != *negated)
        }
        Predicate::In { attr, rhs, negated } => {
            let v = row_attr_value(rel, row, attr)?;
            if v.is_null() {
                return Ok(false);
            }
            let vals = operand_values(db, rhs)?;
            Ok(vals.iter().any(|x| v.sql_eq(x)) != *negated)
        }
    }
}

/// Group-level (HAVING) predicate over one group's row indices.
fn eval_group_pred(db: &Database, scan: &Frame, idxs: &[usize], p: &Predicate) -> Result<bool, ExecError> {
    match p {
        Predicate::And(l, r) => {
            Ok(eval_group_pred(db, scan, idxs, l)? && eval_group_pred(db, scan, idxs, r)?)
        }
        Predicate::Or(l, r) => {
            Ok(eval_group_pred(db, scan, idxs, l)? || eval_group_pred(db, scan, idxs, r)?)
        }
        Predicate::Cmp { op, attr, rhs } => {
            let v = group_attr_value(scan, idxs, attr)?;
            let rv = operand_values(db, rhs)?;
            let Some(first) = rv.first() else { return Ok(false) };
            Ok(cmp_values(&v, first, *op))
        }
        Predicate::Between { attr, low, high } => {
            let v = group_attr_value(scan, idxs, attr)?;
            let lo = operand_values(db, low)?;
            let hi = operand_values(db, high)?;
            match (lo.first(), hi.first()) {
                (Some(lo), Some(hi)) => {
                    Ok(cmp_values(&v, lo, CmpOp::Ge) && cmp_values(&v, hi, CmpOp::Le))
                }
                _ => Ok(false),
            }
        }
        Predicate::Like { attr, pattern, negated } => {
            let v = group_attr_value(scan, idxs, attr)?;
            Ok(!v.is_null() && (v.like(pattern) != *negated))
        }
        Predicate::In { attr, rhs, negated } => {
            let v = group_attr_value(scan, idxs, attr)?;
            if v.is_null() {
                return Ok(false);
            }
            let vals = operand_values(db, rhs)?;
            Ok(vals.iter().any(|x| v.sql_eq(x)) != *negated)
        }
    }
}

// ---- grouping & binning --------------------------------------------------

struct OracleGroup {
    ord: i64,
    key: Vec<Value>,
    label: Value,
    rows: Vec<usize>,
}

/// Partition the scan into groups by (bin ordinal, key values), discovering
/// groups with a linear scan of the group list per row (first occurrence
/// fixes the representative key and label). Groups sort by (ordinal, key).
fn group_entries(
    scan: &Frame,
    key_cols: &[ColumnRef],
    bin: &Option<BinSpec>,
) -> Result<Vec<OracleGroup>, ExecError> {
    let key_idx: Vec<usize> = key_cols
        .iter()
        .map(|c| col_idx(&scan.cols, c))
        .collect::<Result<_, _>>()?;
    let bin_info: Option<(usize, BinUnit, Option<NumericBins>)> = match bin {
        Some(b) => {
            let i = col_idx(&scan.cols, &b.col)?;
            let numeric = match b.unit {
                BinUnit::Numeric { n_bins } => Some(NumericBins::from_values(
                    scan.rows.iter().filter_map(|r| r[i].as_f64()),
                    n_bins,
                )),
                _ => None,
            };
            Some((i, b.unit, numeric))
        }
        None => None,
    };

    let mut groups: Vec<OracleGroup> = Vec::new();
    for (ri, row) in scan.rows.iter().enumerate() {
        let (ord, label) = match &bin_info {
            Some((i, unit, nb)) => bin_value(&row[*i], *unit, nb.as_ref()),
            None => (0, Value::Null),
        };
        let kv: Vec<Value> = key_idx.iter().map(|&i| row[i].clone()).collect();
        match groups.iter_mut().find(|g| g.ord == ord && g.key == kv) {
            Some(g) => g.rows.push(ri),
            None => groups.push(OracleGroup { ord, key: kv, label, rows: vec![ri] }),
        }
    }
    // SQL semantics: a global aggregate (no keys, no bin) over empty input
    // still yields one row.
    if groups.is_empty() && key_idx.is_empty() && bin_info.is_none() {
        groups.push(OracleGroup { ord: 0, key: vec![], label: Value::Null, rows: vec![] });
    }
    groups.sort_by(|a, b| a.ord.cmp(&b.ord).then_with(|| cmp_rows(&a.key, &b.key)));
    Ok(groups)
}

/// Equal-width numeric bins: `size = ceil((max - min) / n_bins).max(1)`.
/// The top edge is inclusive (`last` clamps the ordinal), mirroring the
/// engine's `NumericBins` bit for bit.
struct NumericBins {
    min: f64,
    size: f64,
    last: i64,
}

impl NumericBins {
    fn from_values(vals: impl Iterator<Item = f64>, n_bins: u32) -> NumericBins {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in vals {
            min = min.min(v);
            max = max.max(v);
        }
        if !min.is_finite() || !max.is_finite() {
            return NumericBins { min: 0.0, size: 1.0, last: 0 };
        }
        let size = ((max - min) / f64::from(n_bins)).ceil().max(1.0);
        let last = (((max - min) / size).ceil() as i64 - 1).max(0);
        NumericBins { min, size, last }
    }

    fn bucket(&self, v: f64) -> (i64, Value) {
        let idx = (((v - self.min) / self.size).floor() as i64).min(self.last);
        let lo = self.min + idx as f64 * self.size;
        let hi = lo + self.size;
        (idx, Value::Text(format!("{}-{}", trim_f(lo), trim_f(hi))))
    }
}

fn trim_f(f: f64) -> String {
    if f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{}", f as i64)
    } else {
        format!("{f:.2}")
    }
}

/// (ordinal, label) of one value under a bin unit; NULL and unbinnable
/// values collapse into an `i64::MIN` ordinal "null" bucket.
fn bin_value(v: &Value, unit: BinUnit, num: Option<&NumericBins>) -> (i64, Value) {
    if v.is_null() {
        return (i64::MIN, Value::Null);
    }
    match unit {
        BinUnit::Numeric { .. } => match (v.as_f64(), num) {
            (Some(f), Some(nb)) => nb.bucket(f),
            _ => (i64::MIN, Value::Null),
        },
        temporal => match v.as_time() {
            None => (i64::MIN, Value::Null),
            Some(t) => match temporal {
                BinUnit::Minute => (i64::from(t.minute), Value::Int(i64::from(t.minute))),
                BinUnit::Hour => (i64::from(t.hour), Value::Int(i64::from(t.hour))),
                BinUnit::Weekday => (i64::from(t.weekday()), Value::text(t.weekday_name())),
                BinUnit::Month => (i64::from(t.month), Value::text(t.month_name())),
                BinUnit::Quarter => {
                    (i64::from(t.quarter()), Value::text(format!("Q{}", t.quarter())))
                }
                BinUnit::Year => (i64::from(t.year), Value::Int(i64::from(t.year))),
                BinUnit::Numeric { .. } => unreachable!(),
            },
        },
    }
}

// ---- aggregates ----------------------------------------------------------

/// One aggregate over a pool of values, nulls skipped, DISTINCT by linear
/// scan. Max keeps the last of ties, Min the first — like the iterator
/// `max_by`/`min_by` the executor uses (observable only through the
/// int/float representative of equal values).
fn agg_over(agg: AggFunc, distinct: bool, vals: &[Value]) -> Value {
    let mut pool: Vec<&Value> = Vec::new();
    for v in vals {
        if v.is_null() {
            continue;
        }
        if distinct && pool.iter().any(|p| *p == v) {
            continue;
        }
        pool.push(v);
    }
    match agg {
        AggFunc::Count => Value::Int(pool.len() as i64),
        AggFunc::Max => {
            let mut best: Option<&Value> = None;
            for v in &pool {
                if best.is_none_or(|b| v.total_cmp(b) != std::cmp::Ordering::Less) {
                    best = Some(v);
                }
            }
            best.cloned().unwrap_or(Value::Null)
        }
        AggFunc::Min => {
            let mut best: Option<&Value> = None;
            for v in &pool {
                if best.is_none_or(|b| v.total_cmp(b) == std::cmp::Ordering::Less) {
                    best = Some(v);
                }
            }
            best.cloned().unwrap_or(Value::Null)
        }
        AggFunc::Sum => {
            let mut s = 0.0;
            let mut any = false;
            let mut all_int = true;
            for v in &pool {
                if let Some(f) = v.as_f64() {
                    s += f;
                    any = true;
                    all_int &= matches!(v, Value::Int(_) | Value::Bool(_));
                }
            }
            if !any {
                Value::Null
            } else if all_int {
                Value::Int(s as i64)
            } else {
                Value::Float(s)
            }
        }
        AggFunc::Avg => {
            let mut s = 0.0;
            let mut n = 0usize;
            for v in &pool {
                if let Some(f) = v.as_f64() {
                    s += f;
                    n += 1;
                }
            }
            if n == 0 {
                Value::Null
            } else {
                Value::Float(s / n as f64)
            }
        }
        AggFunc::None => pool.first().cloned().cloned().unwrap_or(Value::Null),
    }
}

/// Evaluate one attribute over the rows (by index) of one group.
fn group_attr_value(scan: &Frame, idxs: &[usize], attr: &Attr) -> Result<Value, ExecError> {
    if attr.agg == AggFunc::Count && attr.col.is_star() {
        return Ok(Value::Int(idxs.len() as i64));
    }
    let col = col_idx(&scan.cols, &attr.col)?;
    let vals: Vec<Value> = idxs.iter().map(|&i| scan.rows[i][col].clone()).collect();
    Ok(agg_over(attr.agg, attr.distinct, &vals))
}

fn attr_display(a: &Attr) -> String {
    if a.agg == AggFunc::None {
        a.col.to_token()
    } else if a.distinct {
        format!("{}(distinct {})", a.agg.keyword(), a.col.to_token())
    } else {
        format!("{}({})", a.agg.keyword(), a.col.to_token())
    }
}

fn attr_out_type(scan: &Frame, a: &Attr) -> ColumnType {
    match a.agg {
        AggFunc::Count | AggFunc::Sum | AggFunc::Avg => ColumnType::Quantitative,
        AggFunc::Max | AggFunc::Min | AggFunc::None => {
            if a.col.is_star() {
                ColumnType::Categorical
            } else {
                col_idx(&scan.cols, &a.col)
                    .map(|i| scan.types[i])
                    .unwrap_or(ColumnType::Categorical)
            }
        }
    }
}

/// Order/superlative attribute of one group: bare key columns read the key;
/// everything else evaluates over the group's rows (a bare non-key column
/// yields its first non-null value in scan order).
fn order_value(
    scan: &Frame,
    entry: &OracleGroup,
    key_cols: &[ColumnRef],
    attr: &Attr,
) -> Result<Value, ExecError> {
    if attr.agg == AggFunc::None {
        if let Some(pos) = key_cols.iter().position(|c| *c == attr.col) {
            return Ok(entry.key[pos].clone());
        }
    }
    group_attr_value(scan, &entry.rows, attr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_data::{table_from, Timestamp};
    use nv_ast::tokens::parse_vql_str;

    fn db() -> Database {
        let mut db = Database::new("ref", "Test");
        db.add_table(table_from(
            "t",
            &[
                ("cat", ColumnType::Categorical),
                ("q", ColumnType::Quantitative),
                ("d", ColumnType::Temporal),
            ],
            vec![
                vec![Value::text("a"), Value::Int(10), Value::Time(Timestamp::date(2020, 1, 5))],
                vec![Value::text("a"), Value::Null, Value::Time(Timestamp::date(2020, 6, 1))],
                vec![Value::Null, Value::Int(30), Value::Time(Timestamp::date(2021, 1, 1))],
                vec![Value::text("b"), Value::Int(30), Value::Null],
            ],
        ));
        db
    }

    fn run(vql: &str) -> ResultSet {
        oracle_execute(&db(), &parse_vql_str(vql).unwrap()).unwrap()
    }

    #[test]
    fn projection_and_filter() {
        assert_eq!(run("select t.cat from t").rows.len(), 4);
        assert_eq!(run("select t.cat from t where t.q > 10").rows.len(), 2);
    }

    #[test]
    fn group_count_and_null_group() {
        let rs = run("select t.cat , count ( t.* ) from t group by t.cat");
        // Groups: null, a, b — nulls form their own group, sorted first.
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0][0], Value::Null);
        assert_eq!(rs.rows[0][1], Value::Int(1));
    }

    #[test]
    fn global_aggregate_over_empty_scan() {
        let rs = run("select count ( t.* ) , sum ( t.q ) from t where t.q > 999");
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert_eq!(rs.rows[0][1], Value::Null);
    }

    #[test]
    fn set_op_dedups_and_sorts() {
        let rs = run("select t.q from t union select t.q from t");
        // Distinct q values: null, 10, 30 — null first under the total order.
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0][0], Value::Null);
    }

    #[test]
    fn bin_year_covers_null() {
        let rs = run("select t.d , count ( t.* ) from t bin t.d by year");
        // null bucket + 2020 + 2021.
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0][0], Value::Null);
        let total: i64 = rs.rows.iter().map(|r| if let Value::Int(n) = r[1] { n } else { 0 }).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn matches_production_executor_on_smoke_queries() {
        let db = db();
        for vql in [
            "select t.cat , count ( t.* ) from t group by t.cat order by count ( t.* ) desc",
            "select t.cat , avg ( t.q ) from t group by t.cat",
            "select t.q from t top 2 by t.q",
            "select t.cat from t where t.q between 5 and 30",
            "select t.d , count ( t.* ) from t bin t.d by month",
            "select max ( t.q ) , min ( t.q ) from t",
        ] {
            let q = parse_vql_str(vql).unwrap();
            let ours = oracle_execute(&db, &q).unwrap();
            let theirs = nv_data::execute(&db, &q).unwrap();
            assert_eq!(ours, theirs, "{vql}");
        }
    }
}
