//! The differential runner: generated (database, query) cases executed by
//! the reference interpreter and by every production entry point —
//! `execute`, `execute_with_cache` (cold and warm), `execute_budgeted` —
//! compared under order-insensitive multiset equality, with failures shrunk
//! to minimal counterexamples.

use crate::gen;
use crate::interp::oracle_execute;
use nv_ast::{Operand, Predicate, SetQuery, VisQuery};
use nv_data::{Database, ExecBudget, ExecCache, ExecError, ResultSet};

/// Configuration for one differential batch.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Batch seed; `case i` is `gen::gen_case(seed, i)`.
    pub seed: u64,
    /// Number of generated databases (each runs [`QUERIES_PER_CASE`] queries
    /// through four engine paths).
    pub cases: usize,
    /// Shrink the first divergence to a minimal counterexample before
    /// reporting (costs extra executions on failure only).
    pub shrink: bool,
}

impl DiffConfig {
    pub fn new(seed: u64, cases: usize) -> DiffConfig {
        DiffConfig { seed, cases, shrink: true }
    }
}

/// How one (query, engine) execution compared against the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// Both succeeded with the same result multiset.
    Agreed,
    /// Both failed with the same error kind.
    AgreedError,
    /// The engine hit an armed fault-injection site (`nv_fault`); not a
    /// divergence — the oracle deliberately has no fault hooks.
    InjectedFault,
    /// Anything else: different results, different error kinds, or one side
    /// erroring while the other succeeded.
    Diverged,
}

/// One shrunk divergence, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Divergence {
    pub seed: u64,
    pub case: usize,
    pub query_index: usize,
    /// Which engine path disagreed (`execute`, `cache-cold`, `cache-warm`,
    /// `budgeted`).
    pub engine: &'static str,
    /// Minimal (or original, if shrinking is off) counterexample.
    pub db: Database,
    pub query: VisQuery,
    pub oracle: Result<ResultSet, ExecError>,
    pub engine_result: Result<ResultSet, ExecError>,
}

impl Divergence {
    /// Human-readable report: the repro line, the query, the database, and
    /// both results.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "DIVERGENCE engine={} — repro: gen_case({}, {}).1[{}] (then shrunk)\n",
            self.engine, self.seed, self.case, self.query_index
        ));
        s.push_str(&format!("query: {:?}\n", self.query));
        s.push_str(&format!("vql:   {}\n", self.query.to_tokens().join(" ")));
        for t in &self.db.tables {
            s.push_str(&format!("table {} ({} rows):\n", t.name(), t.rows.len()));
            let names: Vec<&str> = t.schema.columns.iter().map(|c| c.name.as_str()).collect();
            s.push_str(&format!("  cols: {names:?}\n"));
            for row in t.rows.iter().take(30) {
                s.push_str(&format!("  {row:?}\n"));
            }
        }
        s.push_str(&format!("oracle: {:?}\n", self.oracle));
        s.push_str(&format!("engine: {:?}\n", self.engine_result));
        s
    }
}

/// Aggregate tallies of one batch.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    pub cases: usize,
    /// (query, engine-path) executions compared.
    pub executions: usize,
    pub agreements: usize,
    pub agreed_errors: usize,
    /// Executions short-circuited by armed `nv_fault` sites.
    pub injected_faults: usize,
    pub divergences: Vec<Divergence>,
}

impl DiffReport {
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    pub fn summary(&self) -> String {
        format!(
            "{} cases, {} executions: {} agreed, {} agreed-error, {} injected-fault, {} diverged",
            self.cases,
            self.executions,
            self.agreements,
            self.agreed_errors,
            self.injected_faults,
            self.divergences.len()
        )
    }
}

fn same_error_kind(a: &ExecError, b: &ExecError) -> bool {
    std::mem::discriminant(a) == std::mem::discriminant(b)
}

fn classify(oracle: &Result<ResultSet, ExecError>, engine: &Result<ResultSet, ExecError>) -> Outcome {
    if let Err(ExecError::Internal(m)) = engine {
        if m.contains("injected fault") {
            return Outcome::InjectedFault;
        }
    }
    match (oracle, engine) {
        (Ok(o), Ok(e)) => {
            if o.multiset_eq(e) {
                Outcome::Agreed
            } else {
                Outcome::Diverged
            }
        }
        (Err(oe), Err(ee)) => {
            if same_error_kind(oe, ee) {
                Outcome::AgreedError
            } else {
                Outcome::Diverged
            }
        }
        _ => Outcome::Diverged,
    }
}

/// The four production paths under test. `cache-warm` re-executes against a
/// cache already populated by the cold run, so memoized scans/groups/results
/// are actually exercised.
const ENGINES: [&str; 4] = ["execute", "cache-cold", "cache-warm", "budgeted"];

fn run_engine(
    engine: &'static str,
    db: &Database,
    q: &VisQuery,
    cache: &mut ExecCache,
) -> Result<ResultSet, ExecError> {
    match engine {
        "execute" => nv_data::execute(db, q),
        "cache-cold" | "cache-warm" => nv_data::execute_with_cache(db, q, cache),
        _ => nv_data::execute_budgeted(db, q, ExecBudget::default()),
    }
}

/// Run one batch of differential cases.
pub fn run_differential(config: &DiffConfig) -> DiffReport {
    let mut report = DiffReport::default();
    for case in 0..config.cases {
        let (db, queries) = gen::gen_case(config.seed, case);
        report.cases += 1;
        // Fresh cache per database: warm hits come from this case's own
        // cold runs, never from another database.
        let mut cache = ExecCache::new();
        for (qi, q) in queries.iter().enumerate() {
            let oracle = oracle_execute(&db, q);
            for engine in ENGINES {
                let engine_result = run_engine(engine, &db, q, &mut cache);
                report.executions += 1;
                match classify(&oracle, &engine_result) {
                    Outcome::Agreed => report.agreements += 1,
                    Outcome::AgreedError => report.agreed_errors += 1,
                    Outcome::InjectedFault => report.injected_faults += 1,
                    Outcome::Diverged => {
                        let div = build_divergence(
                            config, case, qi, engine, &db, q, oracle.clone(), engine_result,
                        );
                        report.divergences.push(div);
                    }
                }
            }
        }
    }
    report
}

fn build_divergence(
    config: &DiffConfig,
    case: usize,
    query_index: usize,
    engine: &'static str,
    db: &Database,
    q: &VisQuery,
    oracle: Result<ResultSet, ExecError>,
    engine_result: Result<ResultSet, ExecError>,
) -> Divergence {
    let (db, query) = if config.shrink {
        shrink(db.clone(), q.clone())
    } else {
        (db.clone(), q.clone())
    };
    // Re-run on the shrunk pair so the reported results match it.
    let oracle2 = oracle_execute(&db, &query);
    let engine2 = run_engine(engine, &db, &query, &mut ExecCache::new());
    let (oracle, engine_result) = if classify(&oracle2, &engine2) == Outcome::Diverged {
        (oracle2, engine2)
    } else {
        (oracle, engine_result)
    };
    Divergence { seed: config.seed, case, query_index, engine, db, query, oracle, engine_result }
}

// ---- shrinking -----------------------------------------------------------

/// Does this (db, query) pair still diverge on *any* engine path?
fn still_diverges(db: &Database, q: &VisQuery) -> bool {
    let oracle = oracle_execute(db, q);
    let mut cache = ExecCache::new();
    ENGINES.iter().any(|engine| {
        let r = run_engine(engine, db, q, &mut cache);
        classify(&oracle, &r) == Outcome::Diverged
    })
}

/// Greedy fixpoint shrink: repeatedly try structural simplifications of the
/// query, then of the database, keeping any candidate that still diverges.
/// Bounded, deterministic, and engine-agnostic (a candidate is kept if any
/// of the four paths still disagrees with the oracle, so shrinking can't
/// drift to a different engine's bug unnoticed — the final report re-runs
/// the original engine).
pub fn shrink(mut db: Database, mut q: VisQuery) -> (Database, VisQuery) {
    for _ in 0..200 {
        let mut shrunk = false;
        for cand in query_candidates(&q) {
            if still_diverges(&db, &cand) {
                q = cand;
                shrunk = true;
                break;
            }
        }
        if shrunk {
            continue;
        }
        for cand in db_candidates(&db, &q) {
            if still_diverges(&cand, &q) {
                db = cand;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            break;
        }
    }
    (db, q)
}

/// Structurally smaller variants of a query, most aggressive first.
fn query_candidates(q: &VisQuery) -> Vec<VisQuery> {
    let mut out: Vec<VisQuery> = Vec::new();
    if q.chart.is_some() {
        out.push(VisQuery { chart: None, query: q.query.clone() });
    }
    // Collapse a compound to either arm.
    if let SetQuery::Compound { left, right, .. } = &q.query {
        out.push(VisQuery { chart: q.chart, query: SetQuery::Simple(left.clone()) });
        out.push(VisQuery { chart: q.chart, query: SetQuery::Simple(right.clone()) });
    }

    // Per-body simplifications, applied one at a time.
    let with_body = |bi: usize, f: &dyn Fn(&mut nv_ast::QueryBody)| -> VisQuery {
        let mut q2 = q.clone();
        f(q2.query.bodies_mut()[bi]);
        q2
    };
    let bodies = q.query.bodies();
    for (bi, body) in bodies.iter().enumerate() {
        if body.filter.is_some() {
            out.push(with_body(bi, &|b| b.filter = None));
        }
        // Replace the filter with each immediate And/Or child.
        if let Some(Predicate::And(l, r)) | Some(Predicate::Or(l, r)) = &body.filter {
            for side in [l, r] {
                let side = (**side).clone();
                out.push(with_body(bi, &move |b| b.filter = Some(side.clone())));
            }
        }
        // Replace subquery operands with a trivial literal.
        if body.filter.as_ref().is_some_and(|p| p.has_subquery()) {
            out.push(with_body(bi, &|b| {
                if let Some(p) = &mut b.filter {
                    replace_subqueries(p);
                }
            }));
        }
        if body.group.is_some() {
            out.push(with_body(bi, &|b| b.group = None));
        }
        if body.group.as_ref().is_some_and(|g| g.bin.is_some() && !g.group_by.is_empty()) {
            out.push(with_body(bi, &|b| {
                if let Some(g) = &mut b.group {
                    g.bin = None;
                }
            }));
        }
        if body.order.is_some() {
            out.push(with_body(bi, &|b| b.order = None));
        }
        if body.superlative.is_some() {
            out.push(with_body(bi, &|b| b.superlative = None));
        }
        // Drop a select attribute from either end (keep at least one).
        if body.select.len() > 1 {
            out.push(with_body(bi, &|b| {
                b.select.pop();
            }));
            out.push(with_body(bi, &|b| {
                b.select.remove(0);
            }));
        }
        // Drop the last joined table together with its join conditions.
        if body.from.len() > 1 {
            out.push(with_body(bi, &|b| {
                let dropped = b.from.pop().unwrap().to_lowercase();
                b.joins.retain(|j| {
                    !j.left.table.eq_ignore_ascii_case(&dropped)
                        && !j.right.table.eq_ignore_ascii_case(&dropped)
                });
            }));
        }
    }
    out
}

fn replace_subqueries(p: &mut Predicate) {
    match p {
        Predicate::And(l, r) | Predicate::Or(l, r) => {
            replace_subqueries(l);
            replace_subqueries(r);
        }
        Predicate::Cmp { rhs, .. } | Predicate::In { rhs, .. } => {
            if matches!(rhs, Operand::Subquery(_)) {
                *rhs = Operand::Lit(nv_ast::Literal::Int(0));
            }
        }
        Predicate::Between { low, high, .. } => {
            for o in [low, high] {
                if matches!(o, Operand::Subquery(_)) {
                    *o = Operand::Lit(nv_ast::Literal::Int(0));
                }
            }
        }
        Predicate::Like { .. } => {}
    }
}

/// Structurally smaller variants of the database: drop tables the query
/// never reads, then halve row sets, then drop single rows.
fn db_candidates(db: &Database, q: &VisQuery) -> Vec<Database> {
    let mut out: Vec<Database> = Vec::new();
    let referenced = q.referenced_tables();
    if db.tables.iter().any(|t| !referenced.contains(&t.name().to_lowercase())) {
        let mut d = db.clone();
        d.tables.retain(|t| referenced.contains(&t.name().to_lowercase()));
        out.push(d);
    }
    for (ti, t) in db.tables.iter().enumerate() {
        let n = t.rows.len();
        if n == 0 {
            continue;
        }
        // Halves.
        for keep_first in [true, false] {
            let mut d = db.clone();
            let rows = &mut d.tables[ti].rows;
            if keep_first {
                rows.truncate(n / 2);
            } else {
                *rows = rows.split_off(n / 2);
            }
            out.push(d);
        }
        // Single-row removals once the table is small.
        if n <= 8 {
            for ri in 0..n {
                let mut d = db.clone();
                d.tables[ti].rows.remove(ri);
                out.push(d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nv_ast::tokens::parse_vql_str;
    use nv_data::{table_from, ColumnType, Value};

    #[test]
    fn small_batch_is_clean() {
        let report = run_differential(&DiffConfig::new(0xD1FF, 40));
        assert_eq!(report.executions, report.cases * gen::QUERIES_PER_CASE * ENGINES.len());
        for d in &report.divergences {
            eprintln!("{}", d.render());
        }
        assert!(report.is_clean(), "{}", report.summary());
    }

    #[test]
    fn shrink_drops_unreferenced_tables_and_rows() {
        // Build an artificial "divergence" by comparing against a query the
        // shrinker can minimize: since there is no real divergence, shrink()
        // must return the pair unchanged (still_diverges is false for every
        // candidate, including the originals).
        let mut db = nv_data::Database::new("s", "S");
        db.add_table(table_from(
            "t",
            &[("x", ColumnType::Quantitative)],
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        ));
        db.add_table(table_from("u", &[("y", ColumnType::Quantitative)], vec![]));
        let q = parse_vql_str("select t.x from t").unwrap();
        let (db2, q2) = shrink(db.clone(), q.clone());
        assert_eq!(db2.tables.len(), db.tables.len());
        assert_eq!(q2, q);
    }
}
