//! Differential-testing oracle for the unified-AST executor.
//!
//! Every number this reproduction reports flows through `nv_data`'s
//! executor, which is heavily optimized (shared-scan caching, resource
//! budgets, hash joins). This crate is the independent check on all of it:
//!
//! * [`interp`] — a deliberately slow, obviously-correct reference
//!   interpreter for the full unified AST: nested-loop joins, linear-scan
//!   grouping and dedup, no caching, no budgets. When the production
//!   executor and the interpreter disagree, trust the interpreter first.
//! * [`gen`] — deterministic, seeded generators for random typed databases
//!   (FKs, NULLs, duplicate keys, empty tables) and random well-typed
//!   queries biased toward the Spider-subset shapes the synthesizer emits.
//! * [`diff`] — the differential runner: every generated case through
//!   `execute`, `execute_with_cache` (cold + warm), and `execute_budgeted`,
//!   compared against the oracle under order-insensitive multiset equality,
//!   with failing cases shrunk to minimal counterexamples.
//! * [`laws`] — metamorphic laws that need no oracle at all: predicate
//!   conjunction commutes, `top k` is a prefix of `top k+1`, `A EXCEPT A`
//!   is empty, UNION/INTERSECT commute as multisets, binning partitions the
//!   scan, and ORDER BY never changes the result multiset.
//! * [`golden`] — golden snapshots of full corpus synthesis (pair digests,
//!   hardness histogram, chart distribution, every VQL line) with readable
//!   diffs, frozen under `tests/golden/`.

pub mod diff;
pub mod gen;
pub mod golden;
pub mod interp;
pub mod laws;

pub use diff::{run_differential, shrink, DiffConfig, DiffReport, Divergence};
pub use gen::{case_digest, case_seed, gen_case, QUERIES_PER_CASE};
pub use golden::{corpus_snapshot, diff_lines, snapshot_vis_lines};
pub use interp::oracle_execute;
pub use laws::{run_laws, LawReport};
