//! Golden corpus snapshots: freeze the observable output of full corpus
//! synthesis — per-pair digests, hardness histogram, chart-type
//! distribution, and every (db, chart, hardness, VQL) line — into a stable
//! text format stored under `tests/golden/`. Any executor, filter, or edit
//! change that silently shifts the benchmark fails the golden test with a
//! readable line diff; intentional shifts are re-blessed via
//! `scripts/ci.sh golden --bless`.

use nv_ast::{ChartType, Hardness};
use nv_core::{CorpusSynthesis, Nl2SqlToNl2Vis, SynthesizerConfig};
use nv_spider::{CorpusConfig, SpiderCorpus};

/// Synthesize the snapshot corpus for one seed: `CorpusConfig::small` input
/// (4 databases × 12 pairs) through the default pipeline configuration.
pub fn snapshot_synthesis(seed: u64) -> CorpusSynthesis {
    let corpus = SpiderCorpus::generate(&CorpusConfig::small(seed));
    Nl2SqlToNl2Vis::new(SynthesizerConfig::default()).synthesize_corpus(&corpus)
}

/// Render the full snapshot text for one seed. The format is line-oriented
/// on purpose: every line is independently diffable, and the `vis` lines
/// parse back with `splitn(5, " | ")` so tests can re-verify VQL strings
/// from the snapshot itself.
pub fn corpus_snapshot(seed: u64) -> String {
    let synthesis = snapshot_synthesis(seed);
    let bench = &synthesis.bench;
    let mut s = String::new();
    s.push_str("# Golden corpus snapshot — do not edit by hand.\n");
    s.push_str("# Regenerate with: scripts/ci.sh golden --bless\n");
    s.push_str(&format!("seed = {seed}\n"));
    s.push_str(&format!("input_pairs = {}\n", synthesis.pair_digests.len()));
    s.push_str(&format!("quarantined = {}\n", synthesis.quarantine.len()));
    s.push_str(&format!("vis_objects = {}\n", bench.vis_objects.len()));
    s.push_str(&format!("nl_vis_pairs = {}\n", bench.pairs.len()));

    s.push_str("\n[hardness]\n");
    for h in Hardness::ALL {
        let n = bench.vis_objects.iter().filter(|v| v.hardness == h).count();
        s.push_str(&format!("{} = {n}\n", h.name()));
    }

    s.push_str("\n[charts]\n");
    for c in ChartType::ALL {
        let n = bench.vis_objects.iter().filter(|v| v.chart == c).count();
        s.push_str(&format!("{} = {n}\n", c.keyword()));
    }

    s.push_str("\n[pair_digests]\n");
    for (i, d) in synthesis.pair_digests.iter().enumerate() {
        match d {
            Some(d) => s.push_str(&format!("{i} = {d:016x}\n")),
            None => s.push_str(&format!("{i} = -\n")),
        }
    }

    s.push_str("\n[vis]\n");
    for v in &bench.vis_objects {
        s.push_str(&format!(
            "vis {} | {} | {} | {} | {}\n",
            v.vis_id,
            v.db_name,
            v.chart.keyword(),
            v.hardness.name(),
            v.vql
        ));
    }
    s
}

/// The `(db_name, chart, hardness, vql)` tuples recovered from a rendered
/// snapshot's `vis` lines — the inverse of the `[vis]` section above, used
/// by tests that re-parse and re-classify golden VQL strings.
pub fn snapshot_vis_lines(snapshot: &str) -> Vec<(String, String, String, String)> {
    snapshot
        .lines()
        .filter(|l| l.starts_with("vis "))
        .filter_map(|l| {
            let mut parts = l.splitn(5, " | ");
            let _id = parts.next()?;
            Some((
                parts.next()?.to_string(),
                parts.next()?.to_string(),
                parts.next()?.to_string(),
                parts.next()?.to_string(),
            ))
        })
        .collect()
}

/// A compact, readable line diff between an expected and an actual
/// snapshot: shows each differing line pairwise, plus length mismatch,
/// capped at 30 entries.
pub fn diff_lines(expected: &str, actual: &str) -> String {
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    let mut shown = 0;
    for i in 0..e.len().max(a.len()) {
        let el = e.get(i).copied();
        let al = a.get(i).copied();
        if el == al {
            continue;
        }
        if shown == 30 {
            out.push_str("  … (more differences elided)\n");
            break;
        }
        shown += 1;
        match (el, al) {
            (Some(el), Some(al)) => {
                out.push_str(&format!("  line {}:\n    - {el}\n    + {al}\n", i + 1));
            }
            (Some(el), None) => out.push_str(&format!("  line {}: - {el}\n", i + 1)),
            (None, Some(al)) => out.push_str(&format!("  line {}: + {al}\n", i + 1)),
            (None, None) => unreachable!(),
        }
    }
    if out.is_empty() {
        out.push_str("  (no line differences)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_is_deterministic() {
        assert_eq!(corpus_snapshot(3), corpus_snapshot(3));
    }

    #[test]
    fn snapshot_has_all_sections() {
        let s = corpus_snapshot(3);
        for needle in ["seed = 3", "[hardness]", "[charts]", "[pair_digests]", "[vis]"] {
            assert!(s.contains(needle), "missing {needle:?} in snapshot");
        }
        assert!(!snapshot_vis_lines(&s).is_empty());
    }

    #[test]
    fn diff_lines_pinpoints_changes() {
        let d = diff_lines("a\nb\nc", "a\nX\nc");
        assert!(d.contains("line 2"));
        assert!(d.contains("- b"));
        assert!(d.contains("+ X"));
        assert_eq!(diff_lines("same", "same"), "  (no line differences)\n");
    }
}
