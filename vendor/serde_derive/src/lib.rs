//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! subset. Implemented directly on `proc_macro::TokenStream` (the build
//! environment has no syn/quote): the input item is parsed with a small
//! hand-rolled scanner, and the generated impl is emitted as source text.
//!
//! Supported shapes — exactly what this workspace derives:
//! * structs with named fields,
//! * unit structs and tuple structs (newtype = transparent, like serde),
//! * enums whose variants are unit, tuple, or struct-like,
//! * no generic parameters (none of the workspace types have any).
//!
//! Representation matches upstream serde's externally-tagged default, so
//! JSON written by this code is also what real serde would have written.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: ItemKind,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Shape),
    Enum(Vec<(String, Shape)>),
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skip `#[...]` attribute sequences and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < tokens.len() && is_punct(&tokens[i], '#') {
            i += 1; // '#'
            if i < tokens.len() {
                i += 1; // the [...] group
            }
            continue;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
                continue;
            }
        }
        return i;
    }
}

/// Split a field/variant list on top-level commas, tracking `<...>` depth so
/// commas inside generic arguments don't split (groups are already atomic).
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for tt in tokens {
        if is_punct(tt, '<') {
            angle += 1;
        } else if is_punct(tt, '>') {
            angle -= 1;
        } else if is_punct(tt, ',') && angle == 0 {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            continue;
        }
        cur.push(tt.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Field names of a named-field list (struct body or struct variant body).
fn named_fields(tokens: &[TokenTree]) -> Vec<String> {
    split_top_commas(tokens)
        .into_iter()
        .filter_map(|field| {
            let i = skip_attrs_and_vis(&field, 0);
            match field.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if tokens.get(i).is_some_and(|t| is_punct(t, '<')) {
        return Err(format!(
            "vendored serde derive does not support generic type `{name}`"
        ));
    }

    match kw.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                None | Some(TokenTree::Punct(_)) => Shape::Unit, // `struct X;`
                Some(TokenTree::Group(g)) => match g.delimiter() {
                    Delimiter::Brace => {
                        Shape::Named(named_fields(&g.stream().into_iter().collect::<Vec<_>>()))
                    }
                    Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Shape::Tuple(split_top_commas(&inner).len())
                    }
                    _ => return Err(format!("unexpected struct body for `{name}`")),
                },
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item { name, kind: ItemKind::Struct(shape) })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect::<Vec<_>>()
                }
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            let mut variants = Vec::new();
            for var in split_top_commas(&body) {
                let j = skip_attrs_and_vis(&var, 0);
                let vname = match var.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    _ => continue,
                };
                let shape = match var.get(j + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        Shape::Tuple(split_top_commas(&inner).len())
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Shape::Named(named_fields(&g.stream().into_iter().collect::<Vec<_>>()))
                    }
                    _ => Shape::Unit,
                };
                variants.push((vname, shape));
            }
            Ok(Item { name, kind: ItemKind::Enum(variants) })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

const V: &str = "::serde::json::Value";
const E: &str = "::serde::json::Error";

// ---- Serialize -----------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Shape::Unit) => format!("{V}::Null"),
        ItemKind::Struct(Shape::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".into(),
        ItemKind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("{V}::Array(vec![{}])", items.join(", "))
        }
        ItemKind::Struct(Shape::Named(fields)) => {
            let mut s = String::from("{ let mut m = ::serde::json::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str(&format!("{V}::Object(m) }}"));
            s
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for (vname, shape) in variants {
                match shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => {V}::String(\"{vname}\".to_string()),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => {{ let mut m = ::serde::json::Map::new(); \
                         m.insert(\"{vname}\".to_string(), ::serde::Serialize::to_value(f0)); \
                         {V}::Object(m) }},\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{ let mut m = ::serde::json::Map::new(); \
                             m.insert(\"{vname}\".to_string(), {V}::Array(vec![{}])); \
                             {V}::Object(m) }},\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from(
                            "let mut fm = ::serde::json::Map::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(\"{f}\".to_string(), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{ {inner} \
                             let mut m = ::serde::json::Map::new(); \
                             m.insert(\"{vname}\".to_string(), {V}::Object(fm)); \
                             {V}::Object(m) }},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> {V} {{\n{body}\n}}\n\
         }}\n"
    )
}

// ---- Deserialize ---------------------------------------------------------

fn field_get(map: &str, f: &str, ctx: &str) -> String {
    format!(
        "::serde::Deserialize::from_value({map}.get(\"{f}\").unwrap_or(&{V}::Null))\
         .map_err(|e| {E}::new(format!(\"{ctx}.{f}: {{e}}\")))?"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Shape::Unit) => format!("{{ let _ = v; Ok({name}) }}"),
        ItemKind::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        ItemKind::Struct(Shape::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     {V}::Array(items) if items.len() == {n} => \
                         Ok({name}({})),\n\
                     other => Err({E}::mismatch(\"array of {n}\", other)),\n\
                 }}",
                items.join(", ")
            )
        }
        ItemKind::Struct(Shape::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: {}", field_get("m", f, name)))
                .collect();
            format!(
                "match v {{\n\
                     {V}::Object(m) => Ok({name} {{ {} }}),\n\
                     other => Err({E}::mismatch(\"object\", other)),\n\
                 }}",
                inits.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, shape) in variants {
                match shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                        // Also accept the tagged form `{"Variant": null}`.
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname}),\n"
                        ));
                    }
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(inner)\
                         .map_err(|e| {E}::new(format!(\"{name}::{vname}: {{e}}\")))?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => match inner {{\n\
                                 {V}::Array(items) if items.len() == {n} => \
                                     Ok({name}::{vname}({})),\n\
                                 other => Err({E}::mismatch(\"array of {n}\", other)),\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let ctx = format!("{name}::{vname}");
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: {}", field_get("fm", f, &ctx)))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => match inner {{\n\
                                 {V}::Object(fm) => Ok({name}::{vname} {{ {} }}),\n\
                                 other => Err({E}::mismatch(\"object\", other)),\n\
                             }},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                     {V}::String(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err({E}::new(format!(\"unknown {name} variant '{{other}}'\"))),\n\
                     }},\n\
                     {V}::Object(m) if m.len() == 1 => {{\n\
                         let (tag, inner) = m.iter().next().unwrap();\n\
                         let _ = inner; // all-unit enums never read the payload\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => Err({E}::new(format!(\"unknown {name} variant '{{other}}'\"))),\n\
                         }}\n\
                     }},\n\
                     other => Err({E}::mismatch(\"{name} variant\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &{V}) -> ::std::result::Result<Self, {E}> {{\n{body}\n}}\n\
         }}\n"
    )
}

fn expand(input: TokenStream, which: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => which(&item)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("::std::compile_error!({msg:?});").parse().unwrap(),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
