//! Offline drop-in subset of `serde`.
//!
//! The real serde is format-agnostic; the only format this workspace uses is
//! JSON via `serde_json`, so the vendored version collapses the
//! serializer/deserializer machinery into a single JSON value model
//! ([`json::Value`]) that `serde_json` re-exports. `Serialize` converts to a
//! value tree; `Deserialize` converts back. The `derive` macros generate
//! externally-tagged representations matching upstream serde's defaults
//! (unit variant → string, newtype variant → `{"Name": v}`, tuple variant →
//! `{"Name": [..]}`, struct variant → `{"Name": {..}}`), so anything this
//! repo writes, it can read back.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Map, Value};

/// Serialize into the JSON value model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Deserialize from the JSON value model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::mismatch("bool", other)),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::new(format!("integer {i} out of range"))),
                    other => Err(Error::mismatch("integer", other)),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::mismatch("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::mismatch("string", other)),
        }
    }
}

// ---- container impls -----------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), Error> {
                match v {
                    Value::Array(items) => {
                        let expect = [$($n),+].len();
                        if items.len() != expect {
                            return Err(Error::new(format!(
                                "tuple arity mismatch: want {expect}, got {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(Error::mismatch("tuple array", other)),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Serialize for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}
