//! The JSON value model shared by `serde` and `serde_json`: value tree,
//! insertion-ordered object map, text parser and writers.

use std::fmt;

/// A JSON document. Integers and floats are kept distinct so that i64/u64
/// fields round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// An insertion-ordered string→value map (deterministic serialization).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert, replacing any existing entry with the same key in place.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// `value["key"]` / `value[idx]` support; missing entries read as null
    /// (matching `serde_json`'s lenient indexing).
    pub fn index_str(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    pub fn index_usize(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.index_str(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.index_usize(i)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Upstream-compatible write access: `Null` silently becomes an object,
    /// a missing key is inserted as `Null`, and indexing a non-object panics.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(m) => {
                if !m.contains_key(key) {
                    m.insert(key.to_string(), Value::Null);
                }
                m.get_mut(key).expect("key just ensured present")
            }
            other => panic!("cannot index {} with a string key", kind(other)),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

// ---- errors --------------------------------------------------------------

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    pub fn mismatch(want: &str, got: &Value) -> Error {
        Error::new(format!("expected {want}, got {}", kind(got)))
    }
}

fn kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) | Value::Float(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

// ---- writer --------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // Keep a fractional part so floats round-trip as floats.
        if f.fract() == 0.0 && f.abs() < 1e15 {
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else {
        out.push_str("null"); // serde_json also refuses NaN/inf
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

impl Value {
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        write_compact(&mut out, self);
        out
    }

    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(&mut out, self, 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json_string())
    }
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (wanted '{lit}')")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| self.err("bad \\u escape"))?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the multi-byte UTF-8 sequence.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + width).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid float"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| self.err("invalid integer"))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON document into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let src = r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -7}}"#;
        let v = parse(src).unwrap();
        let back = parse(&v.to_json_string()).unwrap();
        assert_eq!(v, back);
        assert_eq!(v["a"][0], Value::Int(1));
        assert_eq!(v["a"][1], Value::Float(2.5));
        assert_eq!(v["b"]["c"], Value::Int(-7));
        assert_eq!(v["missing"], Value::Null);
        let pretty = v.to_json_string_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn float_round_trip_keeps_floatness() {
        let v = Value::Float(3.0);
        assert_eq!(parse(&v.to_json_string()).unwrap(), v);
    }

    #[test]
    fn map_insert_replaces_in_place() {
        let mut m = Map::new();
        m.insert("a".into(), Value::Int(1));
        m.insert("b".into(), Value::Int(2));
        assert_eq!(m.insert("a".into(), Value::Int(3)), Some(Value::Int(1)));
        assert_eq!(m.keys().collect::<Vec<_>>(), ["a", "b"]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }
}
