//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset this workspace uses — `Criterion`,
//! `benchmark_group` / `BenchmarkGroup::{sample_size, bench_function,
//! finish}`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with plain `std::time::Instant` timing and a
//! one-line-per-benchmark report. No statistics engine, no plotting, no
//! CLI parsing beyond tolerating whatever flags `cargo bench` passes.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque to the optimizer, transparent to the caller.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Harness entry point; hands out benchmark groups.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    /// `cargo bench` passes flags like `--bench`; accept and ignore them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 100,
        }
    }

    /// Ungrouped convenience mirroring upstream's `Criterion::bench_function`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            _criterion: self,
            name: String::new(),
            sample_size: 100,
        };
        g.bench_function(id, f);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // One warm-up call outside measurement, then `sample_size` samples.
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        report(&label, &bencher.samples);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times one sample.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed();
        black_box(out);
        self.samples.push(elapsed);
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    println!(
        "{label:<40} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        sorted.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a runner, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Run one or more groups as the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closure_expected_times() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(10);
            g.bench_function("count", |b| {
                b.iter(|| {
                    calls += 1;
                    calls
                })
            });
            g.finish();
        }
        // 1 warm-up + 10 samples.
        assert_eq!(calls, 11);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
