//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the thin slice of `rand` it actually uses: a seedable
//! deterministic generator (`rngs::StdRng`), `Rng::random`, and
//! `Rng::random_range` over integer and float ranges. The generator is
//! xoshiro256++ seeded through splitmix64 — statistically solid for
//! synthetic-data generation, and fully reproducible across platforms.
//!
//! This is NOT the upstream crate: stream values differ from the real
//! `StdRng` (which is fine — every consumer seeds explicitly and only
//! relies on determinism, not on a specific stream).

use std::ops::{Range, RangeInclusive};

/// Types samplable from the "standard" distribution via [`Rng::random`].
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// A range samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (uniform_u128(rng, span)) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty float range in random_range");
                let unit = <f64 as Standard>::sample_standard(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <f64 as Standard>::sample_standard(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Unbiased uniform integer in [0, span) via rejection sampling.
fn uniform_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        // Rejection zone keeps the modulo unbiased.
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    } else {
        // Spans over u64::MAX only arise from full-width integer ranges,
        // which the workspace never requests; fall back to a wide draw.
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        ((hi << 64) | lo) % span
    }
}

/// The user-facing generator trait (subset).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(3..10);
            assert!((3..10).contains(&v));
            let f = r.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.random_range(1..=12u8);
            assert!((1..=12).contains(&i));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.random_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }
}
