//! Offline drop-in subset of `serde_json`, backed by the vendored serde's
//! JSON value model: `Value`, `Map`, `json!`, `to_string`,
//! `to_string_pretty`, `from_str`.

pub use serde::json::{Error, Map, Value};

/// Serialize any `Serialize` type to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string())
}

/// Serialize any `Serialize` type to pretty (2-space indented) JSON text.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string_pretty())
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&serde::json::parse(text)?)
}

/// Convert any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Convert a [`Value`] tree into any `Deserialize` type.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Build a [`Value`] with JSON literal syntax, interpolating expressions.
///
/// A token-tree muncher in the style of upstream `serde_json`: object keys
/// accumulate until `:`, values recurse (so nested `{}` / `[]` keep JSON
/// semantics instead of parsing as Rust blocks), and interpolated
/// expressions are serialized by reference.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- array munching: accumulate into [$($elems:expr,)*] ----
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null),] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true),] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false),] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*]),] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($obj:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($obj)*}),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last),])
    };
    // A literal-form element leaves its comma in the stream; consume it.
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- object munching: @object map (key-so-far) (rest) (rest-copy) ----
    (@object $object:ident () () ()) => {};
    // Insert a completed (key, value) entry, then continue / finish.
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(::std::string::String::from($($key)+), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(::std::string::String::from($($key)+), $value);
    };
    // Value forms (checked before the generic expr rules so `{}`/`[]` stay JSON).
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Not at a value yet: munch one token into the key accumulator.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ---- primary forms ----
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::value_from(&$other) };
}

/// `json!` interpolation helper: anything `Serialize` becomes a `Value`
/// (taken by reference, so interpolating borrowed fields works).
pub fn value_from<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let name = "axis";
        let v = json!({
            "title": name,
            "n": 3,
            "f": 2.5,
            "flag": true,
            "none": null,
            "tags": ["a", "b",],
            "nested": { "deep": [1, { "x": 0 }] },
        });
        assert_eq!(v["title"].as_str(), Some("axis"));
        assert_eq!(v["n"], Value::Int(3));
        assert_eq!(v["f"].as_f64(), Some(2.5));
        assert_eq!(v["tags"].as_array().unwrap().len(), 2);
        assert_eq!(v["nested"]["deep"][1]["x"], Value::Int(0));
        assert_eq!(json!("bar"), Value::String("bar".into()));
        assert_eq!(json!(7), Value::Int(7));
    }

    #[test]
    fn to_string_round_trip() {
        let v = json!({ "a": [1, 2.5, "x"], "b": null });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
        let p = to_string_pretty(&v).unwrap();
        assert!(p.contains('\n'));
        let back: Value = from_str(&p).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<u32> = vec![1, 2, 3];
        let s = to_string(&xs).unwrap();
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(xs, back);
    }
}
