//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the DSL subset this workspace's tests use: `proptest!` /
//! `prop_compose!` / `prop_oneof!`, `Strategy` with `prop_map` /
//! `prop_recursive` / `boxed`, `any::<T>()`, `Just`, numeric-range and
//! regex-pattern strategies, `prop::sample::{select, subsequence}`,
//! `prop::collection::vec`, `prop::option::of`, `prop_assert!` /
//! `prop_assert_eq!`, `TestCaseError`, and `ProptestConfig::with_cases`.
//!
//! Strategies are plain deterministic samplers (seeded per case index), so
//! failures reproduce exactly on re-run. There is no shrinking: a failing
//! case reports its case index and message as-is.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng as _;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy {
                sampler: Rc::new(move |rng| self.sample(rng)),
            }
        }

        /// Recursive strategies, unrolled to `depth` levels: each level
        /// flips between the leaf strategy and one application of `expand`,
        /// so generated trees nest at most `depth` deep. The `_desired_size`
        /// and `_expected_branch` hints exist for signature compatibility.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let expanded = expand(cur).boxed();
                let l = leaf.clone();
                cur = from_fn(move |rng| {
                    if rng.random_bool(0.5) {
                        l.sample(rng)
                    } else {
                        expanded.sample(rng)
                    }
                })
                .boxed();
            }
            cur
        }
    }

    /// Type-erased, cheaply clonable strategy (`Rc` under the hood).
    pub struct BoxedStrategy<T> {
        sampler: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                sampler: Rc::clone(&self.sampler),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.sampler)(rng)
        }
    }

    /// Strategy from a sampling closure.
    pub struct FnStrategy<F>(F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
        FnStrategy(f)
    }

    /// Uniform choice among same-typed boxed strategies (`prop_oneof!`).
    pub fn one_of<T: 'static>(choices: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one strategy");
        from_fn(move |rng| {
            let idx = rng.random_range(0..choices.len());
            choices[idx].sample(rng)
        })
        .boxed()
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // Numeric ranges are strategies over their element type.
    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    // A `&str` literal is a regex-subset strategy producing `String`:
    // sequences of literal chars or `[...]` classes, each with an optional
    // `{m}` / `{m,n}` repetition.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// Size bound for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max_incl: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max_incl: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_incl: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_incl: n }
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{from_fn, FnStrategy};
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy, reachable via [`any`].
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.random()
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-balanced, magnitude up to ~1e9.
            (rng.random::<f64>() - 0.5) * 2e9
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            (rng.random_range(0x20u32..0x7f) as u8) as char
        }
    }

    pub fn any<A: Arbitrary>() -> FnStrategy<impl Fn(&mut TestRng) -> A> {
        from_fn(|rng| A::arbitrary(rng))
    }

    // `use rand::Rng` for the blanket methods on TestRng.
    use rand::Rng as _;
}

pub mod string {
    use crate::test_runner::TestRng;
    use rand::Rng as _;

    /// Sample a string from a regex-subset pattern: literal characters and
    /// `[...]` character classes (with `a-z` ranges), each optionally
    /// followed by `{m}` or `{m,n}` repetition.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0usize;
        let mut out = String::new();
        while i < chars.len() {
            let set: Vec<char> = if chars[i] == '[' {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (a, b) = (chars[i], chars[i + 2]);
                        assert!(a <= b, "bad range {a}-{b} in pattern {pattern}");
                        for c in a..=b {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern}");
                i += 1; // skip ']'
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                i += 1;
                let mut lo = 0usize;
                while chars[i].is_ascii_digit() {
                    lo = lo * 10 + (chars[i] as usize - '0' as usize);
                    i += 1;
                }
                let hi = if chars[i] == ',' {
                    i += 1;
                    let mut hi = 0usize;
                    while chars[i].is_ascii_digit() {
                        hi = hi * 10 + (chars[i] as usize - '0' as usize);
                        i += 1;
                    }
                    hi
                } else {
                    lo
                };
                assert!(chars[i] == '}', "unterminated repetition in {pattern}");
                i += 1;
                (lo, hi)
            } else {
                (1, 1)
            };
            let n = rng.random_range(lo..=hi);
            for _ in 0..n {
                out.push(set[rng.random_range(0..set.len())]);
            }
        }
        out
    }
}

pub mod sample {
    use crate::strategy::{from_fn, BoxedStrategy, SizeRange, Strategy};
    use rand::Rng as _;

    /// Uniformly select one element of `items`.
    pub fn select<T: Clone + 'static>(items: Vec<T>) -> BoxedStrategy<T> {
        assert!(!items.is_empty(), "select from empty vec");
        from_fn(move |rng| items[rng.random_range(0..items.len())].clone()).boxed()
    }

    /// A random order-preserving subsequence of `items`, with length in
    /// `size`.
    pub fn subsequence<T: Clone + 'static>(
        items: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> BoxedStrategy<Vec<T>> {
        let size = size.into();
        assert!(
            size.max_incl <= items.len(),
            "subsequence size exceeds source length"
        );
        from_fn(move |rng| {
            let k = rng.random_range(size.min..=size.max_incl);
            let mut idx: Vec<usize> = (0..items.len()).collect();
            while idx.len() > k {
                let drop = rng.random_range(0..idx.len());
                idx.remove(drop);
            }
            idx.into_iter().map(|i| items[i].clone()).collect()
        })
        .boxed()
    }
}

pub mod collection {
    use crate::strategy::{from_fn, BoxedStrategy, SizeRange, Strategy};
    use rand::Rng as _;

    /// `Vec` of values from `element`, with length in `size`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        let size = size.into();
        from_fn(move |rng| {
            let n = rng.random_range(size.min..=size.max_incl);
            (0..n).map(|_| element.sample(rng)).collect()
        })
        .boxed()
    }
}

pub mod option {
    use crate::strategy::{from_fn, BoxedStrategy, Strategy};
    use rand::Rng as _;

    /// `None` half the time, `Some(value)` otherwise.
    pub fn of<S>(inner: S) -> BoxedStrategy<Option<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        from_fn(move |rng| {
            if rng.random_bool(0.5) {
                Some(inner.sample(rng))
            } else {
                None
            }
        })
        .boxed()
    }
}

pub mod test_runner {
    use std::fmt;

    /// The generator handed to strategies; deterministic per case.
    pub type TestRng = rand::rngs::StdRng;

    /// Runner configuration (subset: case count only).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drive `case` for `config.cases` iterations with per-index seeding.
    /// Rejected cases are skipped; failures panic with the case index so a
    /// run reproduces exactly.
    pub fn run<F>(config: ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        use rand::SeedableRng as _;
        for i in 0..config.cases {
            let mut rng = TestRng::seed_from_u64(0x9d5f_c0de_0000_0000 ^ u64::from(i));
            match case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case {i}/{} failed: {msg}", config.cases)
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest};

    /// Module-style access mirroring upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option, sample, strategy};
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Define a function returning a composed strategy:
/// `prop_compose! { fn name()(var in strat, ...) -> Ret { body } }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)
            ($($var:ident in $strat:expr),* $(,)?)
            -> $ret:ty $body:block
    ) => {
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |rng| {
                $(let $var = $crate::strategy::Strategy::sample(&($strat), rng);)*
                $body
            })
        }
    };
}

/// Property-test block: each `#[test] fn name(var in strat, ...) { .. }`
/// becomes a normal test that samples its inputs `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (
        $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($var:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($config, |rng| {
                $(let $var = $crate::strategy::Strategy::sample(&($strat), rng);)*
                let case = || -> $crate::test_runner::TestCaseResult {
                    $body
                    Ok(())
                };
                case()
            });
        }
        $crate::__proptest_each! { $config; $($rest)* }
    };
    ($config:expr;) => {};
}

/// Assert within a proptest body; failure becomes a `TestCaseError`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Inequality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_shapes() {
        use rand::SeedableRng as _;
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = crate::string::sample_pattern("[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use std::cell::RefCell;
        let a = RefCell::new(Vec::new());
        crate::test_runner::run(ProptestConfig::with_cases(16), |rng| {
            a.borrow_mut().push(crate::strategy::Strategy::sample(&(0i64..100), rng));
            Ok(())
        });
        let b = RefCell::new(Vec::new());
        crate::test_runner::run(ProptestConfig::with_cases(16), |rng| {
            b.borrow_mut().push(crate::strategy::Strategy::sample(&(0i64..100), rng));
            Ok(())
        });
        assert_eq!(*a.borrow(), *b.borrow());
        assert!(a.borrow().iter().all(|v| (0..100).contains(v)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro pipeline end-to-end: tuples, oneof, option, vec, map.
        #[test]
        fn dsl_end_to_end(
            n in 1u64..50,
            flag in any::<bool>(),
            word in "[a-z]{1,6}",
            choice in prop_oneof![Just(1i32), Just(2i32)],
            opt in prop::option::of(0i32..5),
            items in prop::collection::vec(0i64..10, 1..4),
        ) {
            prop_assert!((1..50).contains(&n));
            let _ = flag;
            prop_assert!(!word.is_empty() && word.len() <= 6);
            prop_assert!(choice == 1 || choice == 2);
            if let Some(v) = opt { prop_assert!((0..5).contains(&v)); }
            prop_assert!(!items.is_empty() && items.len() <= 3);
        }
    }

    prop_compose! {
        fn small_pair()(a in 0i32..10, b in 0i32..10) -> (i32, i32) { (a, b) }
    }

    proptest! {
        #[test]
        fn composed_strategy_samples(p in small_pair()) {
            prop_assert!((0..10).contains(&p.0) && (0..10).contains(&p.1));
        }
    }
}
