//! Bring-your-own-data: load a CSV, write one SQL query, and get
//! visualizations + NL descriptions out — the synthesizer applied beyond
//! any benchmark.
//!
//! ```text
//! cargo run --release --example custom_data [path/to/file.csv]
//! ```
//! Without an argument, a bundled sales CSV is used.

use nvbench::data::table_from_csv;
use nvbench::prelude::*;

const BUNDLED: &str = "\
region,product,units,revenue,sold_on
north,widget,12,340.5,2021-01-10
north,gadget,7,155.0,2021-01-22
south,widget,19,512.0,2021-02-03
south,sprocket,4,98.25,2021-02-14
east,gadget,22,610.75,2021-03-01
east,widget,9,255.0,2021-03-18
west,sprocket,16,402.0,2021-04-02
west,gadget,11,305.5,2021-04-25
north,sprocket,6,150.0,2021-05-07
south,gadget,14,391.0,2021-05-19
east,sprocket,8,210.0,2021-06-11
west,widget,21,577.5,2021-06-28
north,widget,10,280.0,2021-07-04
south,widget,13,365.0,2021-07-21
east,gadget,18,495.0,2021-08-09
west,gadget,5,137.5,2021-08-30
";

fn main() {
    let csv = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).expect("readable CSV file"),
        None => BUNDLED.to_string(),
    };
    let table = match table_from_csv("sales", &csv, ',') {
        Ok(t) => t,
        Err(e) => {
            eprintln!("could not load CSV: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "loaded table 'sales': {} rows × {} columns",
        table.n_rows(),
        table.n_cols()
    );
    for c in &table.schema.columns {
        println!("  {} ({})", c.name, c.ctype);
    }

    // Build the demo SQL from whatever schema the CSV actually has: the
    // first categorical, quantitative and temporal columns found.
    let pick = |ct: ColumnType| {
        table
            .schema
            .columns
            .iter()
            .find(|c| c.ctype == ct)
            .map(|c| c.name.clone())
    };
    let mut cols: Vec<String> = Vec::new();
    cols.extend(pick(ColumnType::Categorical));
    cols.extend(pick(ColumnType::Quantitative));
    cols.extend(pick(ColumnType::Temporal));
    if cols.is_empty() {
        eprintln!("the CSV needs at least one categorical or quantitative column");
        std::process::exit(1);
    }

    let mut db = Database::new("custom", "UserData");
    db.add_table(table);

    // One ordinary SQL query over the data…
    let sql = format!("SELECT {} FROM sales", cols.join(", "));
    let nl = format!(
        "Show the {} of all sales.",
        cols.iter().map(|c| c.replace('_', " ")).collect::<Vec<_>>().join(" and ")
    );
    println!("\ninput SQL: {sql}");

    // …and the synthesizer turns it into charts with NL descriptions.
    let synth = Nl2SqlToNl2Vis::new(SynthesizerConfig { max_vis_per_pair: 5, ..Default::default() });
    let result = synth.synthesize_pair(&db, &nl, &sql, 11).expect("synthesis");
    println!(
        "{} candidates generated, {} kept\n",
        result.filter_stats.total,
        result.outputs.len()
    );
    for (good, variants, _) in &result.outputs {
        let tree = &good.candidate.tree;
        println!("• {}", tree.to_vql());
        println!("  e.g. \"{}\"", variants.first().map(String::as_str).unwrap_or(""));
        let cd = chart_data(&db, tree).unwrap();
        let spec = to_vega_lite(&cd);
        println!(
            "  {} → {} points, Vega-Lite mark {}\n",
            tree.chart.unwrap().display_name(),
            cd.rows.len(),
            spec["mark"]
        );
    }

    // Write the first chart's spec for pasting into the Vega editor.
    if let Some((good, _, _)) = result.outputs.first() {
        let cd = chart_data(&db, &good.candidate.tree).unwrap();
        std::fs::write(
            "custom_chart.vl.json",
            serde_json::to_string_pretty(&to_vega_lite(&cd)).unwrap(),
        )
        .unwrap();
        println!("wrote custom_chart.vl.json (paste into https://vega.github.io/editor)");
    }
}
