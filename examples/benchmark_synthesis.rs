//! Synthesize a complete NL2VIS benchmark from a synthetic Spider-style
//! corpus and report its statistics — the §3 workflow in one binary.
//!
//! ```text
//! cargo run --release --example benchmark_synthesis [n_databases]
//! ```
//!
//! Also exports the benchmark to `nvbench_export.json` to show the
//! serialization surface a downstream consumer would use.

use nvbench::core::{table3, type_hardness_matrix, CostModel, CostReport, DatasetStats};
use nvbench::prelude::*;
use nvbench::spider::QueryGenConfig;

fn main() {
    let n_databases: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);

    println!("generating a {n_databases}-database Spider-style corpus…");
    let corpus = SpiderCorpus::generate(&CorpusConfig {
        n_databases,
        pairs_per_db: 30,
        seed: 42,
        query_cfg: QueryGenConfig::default(),
    });
    println!(
        "  {} databases over {} domains, {} (nl, sql) pairs",
        corpus.databases.len(),
        corpus.n_domains(),
        corpus.pairs.len()
    );

    println!("running nl2sql-to-nl2vis…");
    let synth = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
    let synthesis = synth.synthesize_corpus(&corpus);
    let bench = synthesis.bench;
    println!(
        "  {} vis objects, {} (nl, vis) pairs ({:.2} variants/vis), {} pairs quarantined\n",
        bench.vis_objects.len(),
        bench.pairs.len(),
        bench.variants_per_vis(),
        synthesis.quarantine.len()
    );

    // Table-2 style stats.
    let stats = DatasetStats::of(&bench);
    println!(
        "dataset: {} tables, {} columns (C {:.1}% / T {:.1}% / Q {:.1}%), {} rows",
        stats.n_tables,
        stats.n_columns,
        stats.type_pct('C'),
        stats.type_pct('T'),
        stats.type_pct('Q'),
        stats.n_rows
    );

    // Chart-type mix (Table-3 sketch).
    println!("\nchart-type mix:");
    for row in table3(&bench).iter().take(7) {
        if row.n_vis > 0 {
            println!(
                "  {:<22} {:>5} vis  {:>6} pairs  avg {:>4.1} words  BLEU {:.3}",
                row.chart.display_name(),
                row.n_vis,
                row.n_pairs,
                row.avg_words,
                row.avg_bleu
            );
        }
    }

    // Hardness mix (Figure-10 sketch).
    let matrix = type_hardness_matrix(&bench);
    let total: usize = matrix.values().sum();
    println!("\nhardness mix:");
    for h in Hardness::ALL {
        let n: usize = matrix
            .iter()
            .filter(|((_, hh), _)| *hh == h)
            .map(|(_, c)| c)
            .sum();
        println!("  {:<12} {:>5}  ({:.1}%)", h.name(), n, n as f64 / total as f64 * 100.0);
    }

    // Man-hour accounting (§3.3).
    let cost = CostReport::of(&bench, CostModel::default());
    println!(
        "\nman-hours: {:.2} days with the synthesizer vs {:.1} days from scratch \
         ({:.1}% of the cost, {:.1}× speedup)",
        cost.synthesizer_days(),
        cost.scratch_days(),
        cost.cost_ratio() * 100.0,
        cost.speedup()
    );

    // Export a JSON snapshot of the pair list (vis trees serialize too).
    let export: Vec<serde_json::Value> = bench
        .pairs
        .iter()
        .take(1000)
        .map(|p| {
            let vis = &bench.vis_objects[p.vis_id];
            serde_json::json!({
                "pair_id": p.pair_id,
                "nl": p.nl,
                "vql": vis.vql,
                "chart": vis.chart.keyword(),
                "hardness": vis.hardness.name(),
                "db": vis.db_name,
            })
        })
        .collect();
    std::fs::write(
        "nvbench_export.json",
        serde_json::to_string_pretty(&export).expect("serializes"),
    )
    .expect("writes");
    println!(
        "\nwrote {} pairs to nvbench_export.json",
        export.len().min(1000)
    );
}
