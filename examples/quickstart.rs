//! Quickstart: synthesize (NL, VIS) pairs from a single (NL, SQL) pair —
//! the paper's running example (Figure 4 / Example 5), end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nvbench::prelude::*;

fn main() {
    // A small college database (the Example-5 faculty table, upsized so the
    // chart-quality filter has real data to judge).
    let mut db = Database::new("college", "College");
    let ranks = ["assistant", "associate", "full", "adjunct", "emeritus"];
    let sexes = ["male", "female"];
    db.add_table(nvbench::data::table_from(
        "faculty",
        &[
            ("sex", ColumnType::Categorical),
            ("rank", ColumnType::Categorical),
            ("salary", ColumnType::Quantitative),
            ("hired", ColumnType::Temporal),
        ],
        (0..60)
            .map(|i| {
                vec![
                    Value::text(sexes[i % 2]),
                    Value::text(ranks[i % 5]),
                    Value::Int(70_000 + (i as i64 * 937) % 60_000),
                    Value::text(format!("20{:02}-0{}-15", 10 + i % 12, 1 + i % 9)),
                ]
            })
            .collect(),
    ));

    // The input (NL, SQL) pair — what an NL2SQL benchmark provides.
    let nl = "How many male and female faculties do we have?";
    let sql = "SELECT sex, COUNT(*) FROM faculty GROUP BY sex";
    println!("input NL : {nl}");
    println!("input SQL: {sql}\n");

    // Run the nl2sql-to-nl2vis synthesizer on it.
    let synth = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
    let result = synth
        .synthesize_pair(&db, nl, sql, 7)
        .expect("pipeline runs");

    println!(
        "candidates: {} generated, {} kept after DeepEye-style filtering\n",
        result.filter_stats.total, result.filter_stats.kept
    );

    for (good, variants, needs_manual) in &result.outputs {
        let tree = &good.candidate.tree;
        println!("── vis: {} ({})", tree.chart.unwrap().display_name(), Hardness::of(tree));
        println!("   VQL: {}", tree.to_vql());
        println!(
            "   Δ: {} deletions, {} insertions{}",
            good.candidate.edit.deletion_count(),
            good.candidate.edit.insertion_count(),
            if *needs_manual { " (NL manually revised)" } else { "" }
        );
        for v in variants {
            println!("   nl: {v}");
        }
        // Render to both target languages (§2.6).
        let cd = chart_data(&db, tree).expect("executes");
        let vega = to_vega_lite(&cd);
        let echarts = to_echarts(&cd);
        println!(
            "   Vega-Lite mark: {}, ECharts series: {}",
            vega["mark"], echarts["series"][0]["type"]
        );
        println!();
    }
}
