//! Head-to-head NL2VIS comparison (a miniature Table 5): the three seq2vis
//! variants against the DeepEye and NL4DV rule-based baselines, on one test
//! split.
//!
//! ```text
//! cargo run --release --example nl2vis_comparison
//! ```

use nvbench::baselines::{DeepEyeBaseline, Nl4DvBaseline};
use nvbench::prelude::*;

fn main() {
    println!("building benchmark…");
    let corpus = SpiderCorpus::generate(&CorpusConfig {
        n_databases: 8,
        pairs_per_db: 30,
        seed: 42,
        query_cfg: Default::default(),
    });
    let bench = Nl2SqlToNl2Vis::new(SynthesizerConfig::default()).synthesize_corpus(&corpus).bench;
    let split = bench.split(42);
    let test: Vec<usize> = split.test.iter().copied().take(150).collect();
    println!(
        "  {} pairs ({} train / {} evaluated)\n",
        bench.pairs.len(),
        split.train.len(),
        test.len()
    );

    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    for variant in ModelVariant::ALL {
        println!("training {}…", variant.name());
        let (mut model, dataset) = Seq2Vis::prepare(&bench, Seq2VisConfig::new(variant));
        let report = model.train(&dataset, &split);
        println!(
            "  {} epochs, best val loss {:.3}",
            report.epochs_run, report.best_val_loss
        );
        let eval = evaluate(&model, &bench, &test);
        rows.push((model.name(), eval.tree_accuracy(), eval.result_accuracy()));
    }

    for baseline in [
        Box::new(DeepEyeBaseline::new(42)) as Box<dyn Nl2VisPredictor>,
        Box::new(Nl4DvBaseline::new()),
    ] {
        let eval = evaluate(baseline.as_ref(), &bench, &test);
        rows.push((baseline.name(), eval.tree_accuracy(), eval.result_accuracy()));
    }

    println!("\n{:<22} {:>12} {:>14}", "system", "tree match", "result match");
    for (name, tree, result) in rows {
        println!("{name:<22} {:>11.1}% {:>13.1}%", tree * 100.0, result * 100.0);
    }
    println!("\n(the paper's Table 5 shape: seq2vis ≫ rule-based baselines, and the\n gap widens on Hard/Extra-Hard queries with joins, filters and nesting)");
}
