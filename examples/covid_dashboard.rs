//! The §4.6 COVID-19 case study: train seq2vis on a benchmark that includes
//! the COVID-19 table, then pose the six JHU-dashboard-style expert queries
//! (five should translate; "until today" should fail).
//!
//! ```text
//! cargo run --release --example covid_dashboard
//! ```

use nvbench::prelude::*;
use nvbench::spider::{covid_cases, covid_database, QueryGen, QueryGenConfig};

fn main() {
    // Corpus: a few Spider-style databases plus the COVID table with
    // generated (NL, SQL) pairs, so the schema is in-distribution.
    let mut corpus = SpiderCorpus::generate(&CorpusConfig {
        n_databases: 6,
        pairs_per_db: 25,
        seed: 42,
        query_cfg: QueryGenConfig::default(),
    });
    let covid = covid_database(42);
    let mut qg = QueryGen::new(&covid, 4242, QueryGenConfig { n_pairs: 25, ..Default::default() });
    corpus.pairs.extend(qg.generate(corpus.pairs.len()));
    corpus.databases.push(covid);

    println!("synthesizing the benchmark…");
    let bench = Nl2SqlToNl2Vis::new(SynthesizerConfig::default()).synthesize_corpus(&corpus).bench;
    let split = bench.split(42);
    println!(
        "  {} vis, {} pairs ({} train)",
        bench.vis_objects.len(),
        bench.pairs.len(),
        split.train.len()
    );

    println!("training seq2vis+attention…");
    let (mut model, dataset) = Seq2Vis::prepare(&bench, Seq2VisConfig::new(ModelVariant::Attention));
    let report = model.train(&dataset, &split);
    println!(
        "  {} epochs, best val loss {:.3}\n",
        report.epochs_run, report.best_val_loss
    );

    let db = covid_database(42);
    let mut passed = 0;
    for case in covid_cases() {
        println!("Q: {}", case.nl);
        match model.predict(&case.nl, &db) {
            Some(tree) => {
                let exact = tree == case.gold;
                let result_match = !exact
                    && tree.chart == case.gold.chart
                    && matches!(
                        (execute(&db, &tree), execute(&db, &case.gold)),
                        (Ok(a), Ok(b)) if a.data_eq(&b)
                    );
                let ok = exact || result_match;
                if ok {
                    passed += 1;
                }
                println!("   → {}", tree.to_vql());
                println!(
                    "   {} {}",
                    if ok { "✓ matches the gold visualization" } else { "✗ wrong" },
                    if case.expect_fail { "(paper expects this one to fail)" } else { "" }
                );
                if ok {
                    // Render it, dashboard-style.
                    if let Ok(cd) = chart_data(&db, &tree) {
                        let spec = to_vega_lite(&cd);
                        println!(
                            "   rendered: {} with {} data points",
                            spec["mark"], cd.rows.len()
                        );
                    }
                }
            }
            None => println!(
                "   → no parseable prediction {}",
                if case.expect_fail { "(paper expects this one to fail)" } else { "" }
            ),
        }
        println!();
    }
    println!("{passed}/6 queries translated correctly (paper: 5/6).");
}
