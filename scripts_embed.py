# One-shot helper: embed reproduce_full.txt into EXPERIMENTS.md appendix.
p = 'EXPERIMENTS.md'
s = open(p).read()
out = open('reproduce_full.txt').read()
s = s.replace('@REPRODUCE_OUTPUT@', out.strip())
open(p, 'w').write(s)
print('embedded', len(out), 'bytes')
