//! # nvbench — synthesizing NL2VIS benchmarks from NL2SQL benchmarks
//!
//! A full from-scratch Rust reproduction of *"Synthesizing Natural Language
//! to Visualization (NL2VIS) Benchmarks from NL2SQL Benchmarks"*
//! (Luo et al., SIGMOD 2021): the `nl2sql-to-nl2vis` synthesizer, the
//! nvBench benchmark it produces, the seq2vis neural translator, the
//! DeepEye/NL4DV baselines, and every substrate they run on (relational
//! engine, SQL parser, chart renderers, statistics, neural nets).
//!
//! This facade re-exports the workspace crates under stable module names:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`ast`] | `nv-ast` | unified SQL/VIS grammar (Figure 5), VQL, hardness |
//! | [`data`] | `nv-data` | relational engine + query executor |
//! | [`sql`] | `nv-sql` | SQL parser / renderer |
//! | [`stats`] | `nv-stats` | samplers, KS fits, skew/outliers, BLEU |
//! | [`spider`] | `nv-spider` | synthetic Spider-style corpus (substitute) |
//! | [`quality`] | `nv-quality` | DeepEye-style chart filter |
//! | [`render`] | `nv-render` | chart data, Vega-Lite, ECharts |
//! | [`synth`] | `nv-synth` | tree edits + NL edits |
//! | [`trace`] | `nv-trace` | pipeline observability: spans, counters, trace reports |
//! | [`core`] | `nv-core` | the synthesizer pipeline + NvBench container |
//! | [`nn`] | `nv-nn` | matrices, autograd, LSTM seq2seq |
//! | [`oracle`] | `nv-oracle` | differential oracle: reference interpreter, laws, golden snapshots |
//! | [`seq2vis`] | `nv-seq2vis` | the neural NL2VIS translator + metrics |
//! | [`baselines`] | `nv-baselines` | DeepEye + NL4DV comparators |
//! | [`eval`] | `nv-eval` | simulated human evaluation |
//!
//! ## Quickstart
//!
//! ```
//! use nvbench::prelude::*;
//!
//! // 1. Generate a (small) Spider-style NL2SQL corpus.
//! let corpus = SpiderCorpus::generate(&CorpusConfig::small(42));
//! // 2. Run the nl2sql-to-nl2vis synthesizer over it. The result carries
//! //    the benchmark plus a quarantine ledger of any failed input pairs.
//! let synth = Nl2SqlToNl2Vis::new(SynthesizerConfig::default());
//! let synthesis = synth.synthesize_corpus(&corpus);
//! assert!(synthesis.quarantine.is_empty());
//! let bench = synthesis.bench;
//! assert!(bench.pairs.len() > bench.vis_objects.len());
//! // 3. Render any vis to Vega-Lite.
//! let vis = &bench.vis_objects[0];
//! let db = bench.database(&vis.db_name).unwrap();
//! let cd = nvbench::render::chart_data(db, &vis.tree).unwrap();
//! let spec = nvbench::render::to_vega_lite(&cd);
//! assert!(spec["$schema"].as_str().unwrap().contains("vega-lite"));
//! ```

pub use nv_ast as ast;
pub use nv_baselines as baselines;
pub use nv_core as core;
pub use nv_data as data;
pub use nv_eval as eval;
pub use nv_nn as nn;
pub use nv_oracle as oracle;
pub use nv_quality as quality;
pub use nv_render as render;
pub use nv_seq2vis as seq2vis;
pub use nv_spider as spider;
pub use nv_sql as sql;
pub use nv_stats as stats;
pub use nv_synth as synth;
pub use nv_trace as trace;

/// The most common imports, in one place.
pub mod prelude {
    pub use nv_ast::{ChartType, Hardness, VisQuery};
    pub use nv_core::{
        CorpusSynthesis, CostModel, CostReport, Nl2SqlToNl2Vis, Nl2VisPredictor, NvBench,
        QuarantineEntry, Split, SynthesizerConfig,
    };
    pub use nv_data::{execute, ColumnType, Database, Table, Value};
    pub use nv_nn::ModelVariant;
    pub use nv_render::{chart_data, to_echarts, to_vega_lite};
    pub use nv_seq2vis::{evaluate, Seq2Vis, Seq2VisConfig};
    pub use nv_spider::{CorpusConfig, SpiderCorpus};
    pub use nv_sql::{parse_sql, to_sql};
}
